"""Round-trip and corruption coverage for the columnar codec."""

import json
import struct
import zlib

import pytest

from repro.errors import StoreError
from repro.results.records import canonical_line
from repro.store import (
    COLUMNAR_VERSION,
    columnar_path,
    compact,
    decode_columnar,
    encode_columnar,
    iter_columnar,
    read_column,
    read_columnar,
    verify,
    write_columnar,
)
from repro.store.columnar import _HEADER, _MAGIC


def _canonical(records):
    return [json.dumps(r, sort_keys=True) for r in records]


def _write_jsonl(path, records):
    path.write_text("".join(canonical_line(r) + "\n" for r in records))


def test_columnar_path_suffix(tmp_path):
    assert columnar_path(tmp_path / "smoke.jsonl") == tmp_path / "smoke.columns"


@pytest.mark.parametrize("compress", [True, False])
def test_round_trip_byte_identity(tmp_path, random_records, compress):
    records = random_records(11, 60)
    out = tmp_path / "r.columns"
    write_columnar(out, records, compress=compress)
    decoded = read_columnar(out)
    assert _canonical(decoded) == _canonical(records)


def test_round_trip_preserves_int_float_spellings(tmp_path, make_record):
    # 0 vs 0.0 in fault rates and protocol params must survive: the JSON
    # columns store the canonical dump, not a lossy re-typed value.
    records = [
        make_record(faults={"drop": 0, "duplicate": 0.5, "flip": 0.0,
                            "seed": 7}, wall=1e-9),
        make_record(faults={"drop": 0.25, "duplicate": 1, "flip": 0,
                            "seed": 7}, k=2, wall=0.0),
    ]
    out = write_columnar(tmp_path / "r.columns", records)
    assert _canonical(read_columnar(out)) == _canonical(records)


def test_round_trip_zero_records(tmp_path):
    out = write_columnar(tmp_path / "empty.columns", [])
    assert read_columnar(out) == []


def test_round_trip_null_and_tristate(tmp_path, make_record):
    records = [
        make_record(exact=None),
        make_record(exact=False),
        make_record(exact=True),
    ]
    records[0]["spec"]["budget_bits"] = 128
    out = write_columnar(tmp_path / "r.columns", records)
    decoded = read_columnar(out)
    assert [r["result"]["exact"] for r in decoded] == [None, False, True]
    assert [r["spec"]["budget_bits"] for r in decoded] == [128, None, None]
    assert _canonical(decoded) == _canonical(records)


def test_compression_shrinks_but_decodes_identically(tmp_path, random_records):
    records = random_records(3, 200)
    small = write_columnar(tmp_path / "a.columns", records, compress=True)
    large = write_columnar(tmp_path / "b.columns", records, compress=False)
    assert small.stat().st_size < large.stat().st_size
    assert _canonical(read_columnar(small)) == _canonical(read_columnar(large))


def test_deterministic_bytes(tmp_path, random_records):
    records = random_records(5, 30)
    a = write_columnar(tmp_path / "a.columns", records)
    b = write_columnar(tmp_path / "b.columns", records)
    assert a.read_bytes() == b.read_bytes()


def test_encode_decode_in_memory_round_trip(random_records):
    records = random_records(31, 40)
    blob = encode_columnar(records)
    assert _canonical(decode_columnar(blob)) == _canonical(records)


@pytest.mark.parametrize("compress", [True, False])
def test_read_column_slices_one_page(tmp_path, random_records, compress):
    records = random_records(13, 50)
    out = write_columnar(tmp_path / "r.columns", records, compress=compress)
    bits = read_column(out, "result.max_message_bits")
    assert bits == [r["result"]["max_message_bits"] for r in records]
    assert read_column(out, "spec.protocol") == \
        [r["spec"]["protocol"] for r in records]
    assert read_column(out, "result.exact") == \
        [r["result"]["exact"] for r in records]


def test_read_column_unknown_name(tmp_path, make_record):
    out = write_columnar(tmp_path / "r.columns", [make_record()])
    with pytest.raises(StoreError, match="no column"):
        read_column(out, "result.nope")


def test_read_column_missing_file(tmp_path):
    with pytest.raises(StoreError, match="does not exist"):
        read_column(tmp_path / "ghost.columns", "spec.n")


def test_iter_columnar_matches_read(tmp_path, random_records):
    records = random_records(9, 10)
    out = write_columnar(tmp_path / "r.columns", records)
    assert list(iter_columnar(out)) == read_columnar(out)


def test_int64_overflow_raises_store_error(tmp_path, make_record):
    record = make_record()
    record["result"]["total_message_bits"] = 1 << 80
    with pytest.raises(StoreError, match="int64"):
        write_columnar(tmp_path / "r.columns", [record])


def test_compact_and_verify(tmp_path, random_records):
    records = random_records(21, 25)
    jsonl = tmp_path / "smoke.jsonl"
    _write_jsonl(jsonl, records)
    columns, count = compact(jsonl)
    assert count == 25
    assert columns == tmp_path / "smoke.columns"
    assert verify(jsonl) == 25


def test_verify_detects_stale_store(tmp_path, random_records, make_record):
    records = random_records(2, 5)
    jsonl = tmp_path / "smoke.jsonl"
    _write_jsonl(jsonl, records)
    compact(jsonl)
    # The campaign gains a record; the derived store is now stale.
    _write_jsonl(jsonl, records + [make_record(seed=99)])
    with pytest.raises(StoreError, match="holds 5 record"):
        verify(jsonl)


def test_verify_detects_content_divergence(tmp_path, random_records):
    records = random_records(4, 5)
    jsonl = tmp_path / "smoke.jsonl"
    _write_jsonl(jsonl, records)
    compact(jsonl)
    mutated = [dict(r, cached=True) for r in records]
    _write_jsonl(jsonl, mutated)
    with pytest.raises(StoreError, match="record 1"):
        verify(jsonl)


def test_verify_missing_jsonl(tmp_path):
    with pytest.raises(StoreError, match="does not exist"):
        verify(tmp_path / "gone.jsonl")


def test_read_missing_file(tmp_path):
    with pytest.raises(StoreError, match="does not exist"):
        read_columnar(tmp_path / "gone.columns")


def test_read_bad_magic(tmp_path):
    bad = tmp_path / "bad.columns"
    bad.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(StoreError, match="bad magic"):
        read_columnar(bad)


def test_read_truncated_header(tmp_path):
    bad = tmp_path / "bad.columns"
    bad.write_bytes(b"RCOL\x00")
    with pytest.raises(StoreError, match="truncated header"):
        read_columnar(bad)


def test_read_newer_version(tmp_path):
    bad = tmp_path / "bad.columns"
    bad.write_bytes(_HEADER.pack(_MAGIC, COLUMNAR_VERSION + 1, 0, 0, 0))
    with pytest.raises(StoreError, match="newer than this reader"):
        read_columnar(bad)


def test_read_unknown_flags(tmp_path):
    bad = tmp_path / "bad.columns"
    bad.write_bytes(_HEADER.pack(_MAGIC, COLUMNAR_VERSION, 0x8000, 0, 0))
    with pytest.raises(StoreError, match="unknown flag"):
        read_columnar(bad)


def test_read_truncated_directory(tmp_path, make_record):
    out = write_columnar(tmp_path / "r.columns", [make_record()])
    data = out.read_bytes()
    bad = tmp_path / "bad.columns"
    bad.write_bytes(data[: _HEADER.size + 3])
    with pytest.raises(StoreError, match="truncated column directory"):
        read_columnar(bad)


def test_read_truncated_body(tmp_path, make_record):
    out = write_columnar(tmp_path / "r.columns", [make_record()],
                         compress=False)
    data = out.read_bytes()
    bad = tmp_path / "bad.columns"
    bad.write_bytes(data[:-5])
    with pytest.raises(StoreError, match="body holds"):
        read_columnar(bad)


def test_read_corrupt_deflate_body(tmp_path, make_record):
    out = write_columnar(tmp_path / "r.columns", [make_record()],
                         compress=True)
    data = bytearray(out.read_bytes())
    data[-1] ^= 0xFF
    bad = tmp_path / "bad.columns"
    bad.write_bytes(bytes(data))
    with pytest.raises(StoreError, match="(corrupt deflated|body holds)"):
        read_columnar(bad)


def test_read_schema_mismatch(tmp_path):
    # A structurally valid file whose directory names a different schema.
    name = b"not.a.column"
    directory = struct.pack(">H", len(name)) + name + struct.pack(">BQ", 0, 8)
    body = zlib.compress(struct.pack(">q", 1), 6)
    header = _HEADER.pack(_MAGIC, COLUMNAR_VERSION, 1, 1, 1)
    bad = tmp_path / "bad.columns"
    bad.write_bytes(header + directory + body)
    with pytest.raises(StoreError, match="does not match"):
        read_columnar(bad)
