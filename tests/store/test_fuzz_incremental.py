"""Seeded fuzz: incremental aggregation ≡ batch, regardless of sharding.

The serve ``/summary`` path feeds shard streams as they land; the merge
path aggregates the final file in one pass.  Both must produce the same
bytes.  This suite drives random record streams through every shard
factorization the engine uses (1/2/3/4/8 shards) and through shuffled
feed orders, and pins ``json.dumps(groups, sort_keys=True)`` equality —
bit-for-bit, not approximately.
"""

import json
import random

import pytest

from repro.results.aggregate import (
    SKETCH_EXACT_LIMIT,
    Aggregator,
    aggregate,
    percentile,
)

AXES = ("protocol", "family", "n")


def _bits(groups):
    return json.dumps(groups, sort_keys=True)


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1011])
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
def test_sharded_incremental_matches_batch(random_records, seed, shards):
    records = random_records(seed, 120)
    batch = aggregate(records)

    agg = Aggregator()
    for i in range(shards):
        agg.feed_many(records[i::shards])  # interleaved, as shards land
    assert agg.records == len(records)
    assert _bits(agg.groups()) == _bits(batch)


@pytest.mark.parametrize("seed", [3, 9, 27])
def test_feed_order_is_irrelevant(random_records, seed):
    records = random_records(seed, 80)
    expected = _bits(aggregate(records, by=AXES, include_timing=True))
    for perm_seed in range(4):
        shuffled = records[:]
        random.Random(perm_seed).shuffle(shuffled)
        agg = Aggregator(by=AXES, include_timing=True)
        agg.feed_many(shuffled)
        assert _bits(agg.groups()) == expected


@pytest.mark.parametrize("seed", [5, 13])
def test_partial_aggregators_partition_the_whole(random_records, seed):
    # Per-shard aggregators see disjoint record slices; their group keys
    # must partition the whole's — no group appears from nowhere and none
    # is lost, which is what lets the summary cache tail shards freely.
    records = random_records(seed, 90)
    whole = Aggregator(by=AXES)
    whole.feed_many(records)

    parts = []
    for i in range(3):
        part = Aggregator(by=AXES)
        part.feed_many(records[i::3])
        parts.append(part)
    assert sum(p.records for p in parts) == len(records)

    whole_keys = {tuple(g["group"][a] for a in AXES) for g in whole.groups()}
    part_keys = set()
    for part in parts:
        part_keys |= {tuple(g["group"][a] for a in AXES) for g in part.groups()}
    assert part_keys == whole_keys


def test_exact_mode_p95_matches_percentile(random_records):
    # Below the spill limit the sketch answers with the *exact*
    # nearest-rank percentile — bit-identical to the legacy batch helper.
    records = random_records(77, 200)
    groups = aggregate(records, by=("protocol",))
    by_protocol = {}
    for record in records:
        by_protocol.setdefault(record["spec"]["protocol"], []).append(
            record["result"]["max_message_bits"]
        )
    for group in groups:
        values = by_protocol[group["group"]["protocol"]]
        assert group["max_message_bits"]["p95"] == percentile(values, 95.0)


def test_spill_mode_stays_bounded_and_order_independent(make_record):
    # More distinct values than the exact limit: the sketch spills to log
    # buckets.  Accuracy degrades to the documented ~9.1% relative error;
    # order independence must NOT degrade.
    n = SKETCH_EXACT_LIMIT + 500
    rng = random.Random(0xBEC4E12011)
    values = rng.sample(range(1, 10_000_000), n)
    records = [make_record(max_bits=v) for v in values]

    agg_fwd = Aggregator(by=("protocol",))
    agg_fwd.feed_many(records)
    agg_rev = Aggregator(by=("protocol",))
    agg_rev.feed_many(records[::-1])
    assert _bits(agg_fwd.groups()) == _bits(agg_rev.groups())

    exact = percentile(values, 95.0)
    approx = agg_fwd.groups()[0]["max_message_bits"]["p95"]
    assert abs(approx - exact) / exact <= 0.10
