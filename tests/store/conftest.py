"""Shared factories for the store/trend test battery."""

import random

import pytest

from repro.results.records import validate_record


def _make_record(*, protocol="forest", family="random_forest", n=16, seed=0,
                 status="ok", exact=True, max_bits=20, total_bits=320,
                 k=None, faults=None, dropped=0, wall=0.01,
                 digest="d", scenario="s") -> dict:
    protocol_params = {} if k is None else {"k": k}
    record = {
        "spec_version": 2,
        "spec": {
            "scenario": scenario, "family": family, "n": n, "seed": seed,
            "protocol": protocol, "family_params": {},
            "protocol_params": protocol_params, "budget_bits": None,
            "shuffle_delivery": False, "faults": faults,
        },
        "result": {
            "status": status, "output_kind": "graph", "output_digest": digest,
            "exact": exact, "graph_n": n, "graph_m": n - 1,
            "max_message_bits": max_bits, "total_message_bits": total_bits,
            "faults": {"dropped": dropped, "duplicated": 0, "flipped": 0},
            "error": "",
        },
        "timing": {"wall_seconds": wall},
        "cached": False,
    }
    return validate_record(record)


def _random_record(rng: random.Random) -> dict:
    """One schema-valid record with randomized axes and measurements."""
    faults = None
    if rng.random() < 0.3:
        # Mix int and float fault rates: their JSON spellings differ, so
        # the codec's canonical-JSON columns must preserve them exactly.
        faults = {
            "drop": rng.choice([0, 0.1, 0.25]),
            "duplicate": rng.choice([0, 1, 0.5]),
            "flip": rng.choice([0.0, 0.05]),
            "seed": rng.randrange(1 << 16),
        }
    return _make_record(
        protocol=rng.choice(["forest", "spanning_tree", "degeneracy"]),
        family=rng.choice(["random_forest", "path", "star"]),
        n=rng.choice([4, 16, 64, 256]),
        seed=rng.randrange(8),
        status=rng.choice(["ok", "ok", "ok", "violation", "error"]),
        exact=rng.choice([True, False, None]),
        max_bits=rng.randrange(0, 5000),
        total_bits=rng.randrange(0, 100_000),
        k=rng.choice([None, 1, 2, 5]),
        faults=faults,
        dropped=rng.randrange(3),
        wall=rng.choice([0.0, 0.001, 0.5, 1e-9, 3.25]),
        digest=f"{rng.randrange(1 << 32):08x}",
        scenario=rng.choice(["s", "sweep", "faulty"]),
    )


@pytest.fixture()
def make_record():
    return _make_record


@pytest.fixture()
def random_records():
    def build(seed: int, count: int) -> list[dict]:
        rng = random.Random(seed)
        return [_random_record(rng) for _ in range(count)]

    return build
