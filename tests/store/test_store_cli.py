"""CLI surface for the store: compact/verify/read, merge --compact,
``report --trend``, and the bench trend gate.

Exit-code convention (PR 2): 0 success, 1 domain failure (stale store,
trend regression, campaign with nothing to report), 2 usage error.
Errors are messages, never tracebacks.
"""

import json

import pytest

from repro.cli import main
from repro.store import (
    TREND_VERSION,
    append_point,
    bench_trend_key,
    campaign_trend_key,
    load_points,
    trends_path,
)


@pytest.fixture()
def campaign_dir(tmp_path):
    """A merged 3-shard smoke campaign (the CI job's shape)."""
    for i in range(3):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "3", "--shard-index", str(i)]) == 0
    assert main(["merge", "smoke", "--results-dir", str(tmp_path)]) == 0
    return tmp_path


class TestStoreSubcommand:
    def test_compact_then_verify_then_read(self, campaign_dir, capsys):
        records = campaign_dir / "smoke.jsonl"
        capsys.readouterr()
        assert main(["store", "compact", str(records), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 8
        assert payload["columns"].endswith("smoke.columns")

        assert main(["store", "verify", str(records), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True and payload["records"] == 8

        assert main(["store", "read",
                     str(campaign_dir / "smoke.columns")]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == [
            line for line in records.read_text().splitlines() if line.strip()
        ]

    def test_verify_stale_store_exits_one(self, campaign_dir, capsys):
        records = campaign_dir / "smoke.jsonl"
        assert main(["store", "compact", str(records)]) == 0
        with records.open("a") as fh:  # campaign re-run appended a record
            first = records.read_text().splitlines()[0]
            fh.write(first + "\n")
        capsys.readouterr()
        assert main(["store", "verify", str(records)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err or "holds" in err
        assert "Traceback" not in err

    def test_compact_missing_records_exits_two(self, tmp_path, capsys):
        assert main(["store", "compact",
                     str(tmp_path / "ghost.jsonl")]) == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_read_missing_columns_exits_two(self, tmp_path, capsys):
        assert main(["store", "read", str(tmp_path / "ghost.columns")]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "Traceback" not in err


class TestMergeCompact:
    def test_merge_compact_writes_store_and_trend(self, tmp_path, capsys):
        for i in range(3):
            assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                         "--shards", "3", "--shard-index", str(i)]) == 0
        capsys.readouterr()
        assert main(["merge", "smoke", "--results-dir", str(tmp_path),
                     "--compact", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"].endswith("smoke.columns")
        assert payload["trends"].endswith("trends.jsonl")
        assert (tmp_path / "smoke.columns").exists()

        points = load_points(trends_path(tmp_path))
        assert len(points) == 1
        assert points[0]["kind"] == "campaign"
        assert points[0]["metrics"]["records"] == 8

        # Round-trip acceptance: the store proves lossless via the CLI.
        assert main(["store", "verify",
                     str(tmp_path / "smoke.jsonl")]) == 0

    def test_repeated_merge_compact_extends_series(self, tmp_path, capsys):
        for i in range(2):
            assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                         "--shards", "2", "--shard-index", str(i)]) == 0
        for _ in range(3):
            assert main(["merge", "smoke", "--results-dir", str(tmp_path),
                         "--compact"]) == 0
        points = load_points(trends_path(tmp_path))
        assert len(points) == 3
        assert len({p["key"] for p in points}) == 1  # same grid, same series


class TestReportTrend:
    def test_report_trend_appends_point(self, campaign_dir, capsys):
        capsys.readouterr()
        assert main(["report", str(campaign_dir / "smoke.jsonl"),
                     "--trend", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trend"]["regressed"] is False
        assert payload["trend"]["points"] == 1
        assert len(load_points(trends_path(campaign_dir))) == 1

    def test_report_trend_regression_exits_one(self, campaign_dir, capsys):
        # Inject a synthetic 3-run climb below any real p95 so the real
        # run's value extends the strictly-increasing tail.  The series
        # key must match what report computes, so derive it by running
        # report --trend once and reusing the recorded key.
        ledger = trends_path(campaign_dir)
        records = campaign_dir / "smoke.jsonl"
        assert main(["report", str(records), "--trend", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        key = payload["trend"]["key"]
        real = payload["trend"]["metrics"]["max_message_bits_p95"]
        ledger.unlink()
        for v in (real - 3, real - 2, real - 1):
            append_point(ledger, {
                "trend_version": TREND_VERSION, "kind": "campaign",
                "key": key, "name": "smoke",
                "metrics": {"max_message_bits_p95": v},
            })
        assert main(["report", str(records), "--trend"]) == 1
        out = capsys.readouterr()
        assert "TREND REGRESSION" in out.out or "regress" in out.out.lower()
        assert "Traceback" not in out.err

    def test_report_missing_records_is_clean_exit_one(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "smoke.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "has not written" in err
        assert "Traceback" not in err

    def test_report_empty_records_is_clean_exit_one(self, tmp_path, capsys):
        records = tmp_path / "smoke.jsonl"
        records.write_text("")
        assert main(["report", str(records)]) == 1
        err = capsys.readouterr().err
        assert "nothing to report" in err
        assert "Traceback" not in err


class TestBenchTrendGate:
    BENCH = ["bench", "l0-update", "--scale", "0.05", "--repeats", "1"]

    def test_first_gated_run_starts_a_series(self, tmp_path, capsys):
        ledger = tmp_path / "trends.jsonl"
        assert main(self.BENCH + ["--output", "-",
                                  "--trends", str(ledger)]) == 0
        points = load_points(ledger)
        assert [p["name"] for p in points] == ["l0-update"]
        assert points[0]["kind"] == "bench"
        assert points[0]["key"] == bench_trend_key(["l0-update"], 0.05)

    def test_injected_three_run_climb_fails_the_gate(self, tmp_path, capsys):
        # Acceptance criterion: a synthetic p95 regression spanning three
        # prior runs makes `repro bench --trends` exit 1 — any real wall
        # time extends a 1e-9 → 3e-9 climb.
        ledger = tmp_path / "trends.jsonl"
        key = bench_trend_key(["l0-update"], 0.05)
        for v in (1e-9, 2e-9, 3e-9):
            append_point(ledger, {
                "trend_version": TREND_VERSION, "kind": "bench",
                "key": key, "name": "l0-update",
                "metrics": {"wall_p95_seconds": v},
            })
        capsys.readouterr()
        assert main(self.BENCH + ["--output", "-",
                                  "--trends", str(ledger)]) == 1
        out = capsys.readouterr()
        assert "trend" in (out.out + out.err).lower()
        assert "Traceback" not in out.err
        # The failing run still recorded its point (ledger is append-only
        # history, not a gate artifact).
        assert len(load_points(ledger)) == 4

    def test_unreadable_ledger_is_usage_error(self, tmp_path, capsys):
        ledger = tmp_path / "trends.jsonl"
        ledger.write_text("not json\n" * 2)
        assert main(self.BENCH + ["--output", "-",
                                  "--trends", str(ledger)]) == 2
        assert "Traceback" not in capsys.readouterr().err


def test_campaign_trend_key_separates_grids():
    assert campaign_trend_key(["a", "b"]) != campaign_trend_key(["a"])
