"""The trend ledger: durability, series selection, the regression rule."""

import json

import pytest

from repro.errors import StoreError
from repro.store import (
    DEFAULT_WINDOW,
    TREND_VERSION,
    append_point,
    bench_point,
    bench_trend_key,
    campaign_point,
    campaign_trend_key,
    load_points,
    regressed,
    series,
    trends_path,
    validate_point,
)


def _point(value=1.0, *, kind="bench", key="k", name="b"):
    return {
        "trend_version": TREND_VERSION,
        "kind": kind,
        "key": key,
        "name": name,
        "metrics": {"wall_p95_seconds": value},
    }


def test_trends_path(tmp_path):
    assert trends_path(tmp_path) == tmp_path / "trends.jsonl"


def test_append_and_load_round_trip(tmp_path):
    ledger = trends_path(tmp_path)
    for v in (1.0, 2.0, 3.0):
        append_point(ledger, _point(v))
    points = load_points(ledger)
    assert [p["metrics"]["wall_p95_seconds"] for p in points] == [1.0, 2.0, 3.0]


def test_load_missing_ledger_is_empty(tmp_path):
    assert load_points(trends_path(tmp_path)) == []


def test_load_tolerates_torn_tail(tmp_path):
    ledger = trends_path(tmp_path)
    append_point(ledger, _point(1.0))
    with ledger.open("a") as fh:
        fh.write('{"trend_version": 1, "kind": "ben')  # crash mid-write
    points = load_points(ledger)
    assert len(points) == 1


def test_load_rejects_midstream_corruption(tmp_path):
    ledger = trends_path(tmp_path)
    good = json.dumps(_point(1.0), sort_keys=True)
    ledger.write_text(good + "\n" + "garbage\n" + good + "\n")
    with pytest.raises(StoreError):
        load_points(ledger)


@pytest.mark.parametrize("mutate, match", [
    (lambda p: p.pop("metrics"), "metrics"),
    (lambda p: p.update(kind="other"), "kind"),
    (lambda p: p.update(metrics={}), "non-empty"),
    (lambda p: p.update(metrics={"m": True}), "number"),
    (lambda p: p.update(metrics={"m": "fast"}), "number"),
    (lambda p: p.update(trend_version=TREND_VERSION + 1), "newer"),
])
def test_validate_point_rejects(mutate, match):
    point = _point()
    mutate(point)
    with pytest.raises(StoreError, match=match):
        validate_point(point)


def test_series_filters_on_all_axes(tmp_path):
    points = [
        _point(1.0),
        _point(9.0, name="other"),
        _point(8.0, key="other"),
        _point(7.0, kind="campaign"),
        _point(2.0),
    ]
    values = series(points, kind="bench", key="k", name="b",
                    metric="wall_p95_seconds")
    assert values == [1.0, 2.0]
    assert series(points, kind="bench", key="k", name="b",
                  metric="missing") == []


def test_regressed_needs_window_plus_one():
    assert not regressed([1.0, 2.0, 3.0])  # only 2 deltas for window=3
    assert regressed([1.0, 2.0, 3.0, 4.0])


def test_regressed_requires_strict_monotone_tail():
    assert not regressed([1.0, 2.0, 2.0, 3.0])   # plateau breaks the climb
    assert not regressed([5.0, 2.0, 3.0, 4.0, 3.9])
    assert regressed([9.0, 1.0, 2.0, 3.0, 4.0])  # only the tail matters


def test_regressed_custom_window():
    assert regressed([1.0, 2.0], window=1)
    assert not regressed([2.0, 1.0], window=1)
    with pytest.raises(StoreError):
        regressed([1.0, 2.0], window=0)


def test_bench_trend_key_is_order_insensitive_content_hash():
    key = bench_trend_key(["b", "a"], 1.0)
    assert key == bench_trend_key(["a", "b"], 1.0)
    assert key != bench_trend_key(["a", "b"], 2.0)
    assert key != bench_trend_key(["a"], 1.0)
    assert len(key) == 16


def test_campaign_trend_key_depends_on_specs():
    key = campaign_trend_key(["h1", "h2"])
    assert key != campaign_trend_key(["h1", "h3"])
    assert len(key) == 16


def test_bench_point_shape():
    point = validate_point(bench_point(key="k", name="l0-update",
                                       wall_p95_seconds=0.5))
    assert point["kind"] == "bench"
    assert point["metrics"] == {"wall_p95_seconds": 0.5}


def test_campaign_point_metrics(make_record):
    records = [make_record(max_bits=b) for b in (10, 20, 30, 40)]
    point = validate_point(
        campaign_point(name="smoke", spec_hashes=["h"], records=records)
    )
    assert point["kind"] == "campaign"
    assert point["metrics"]["records"] == 4
    assert point["metrics"]["max_message_bits_mean"] == 25.0
    assert point["metrics"]["max_message_bits_p95"] == 40


def test_campaign_point_zero_records_raises():
    with pytest.raises(StoreError, match="no records"):
        campaign_point(name="smoke", spec_hashes=["h"], records=[])
