"""Campaign runner: dedup, caching, JSONL determinism, spec loading."""

import json

import pytest

from repro.engine import (
    Campaign,
    FaultSpec,
    ProcessPoolExecutor,
    Scenario,
    SerialExecutor,
    ThreadPoolExecutor,
    builtin_campaign,
    load_campaign,
)
from repro import registry
from repro.errors import ProtocolError


def _scenarios():
    return [
        Scenario(name="forest", family="random_forest", sizes=(12, 16),
                 protocol="forest", seeds=(0, 1)),
        Scenario(name="conn", family="two_components", sizes=(12,),
                 protocol="agm_connectivity", seeds=(0,)),
    ]


def _strip_nondeterministic(jsonl_text):
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


class TestExpansion:
    def test_overlapping_grids_deduplicate(self, tmp_path):
        overlapping = _scenarios() + [_scenarios()[0]]  # same block twice
        campaign = Campaign(overlapping, results_dir=tmp_path)
        assert len(campaign.specs()) == 5  # 4 forest + 1 connectivity

    def test_empty_campaign_rejected(self):
        with pytest.raises(ProtocolError, match="at least one scenario"):
            Campaign([])

    def test_same_physical_run_under_two_names_deduplicates(self, tmp_path):
        twins = [
            Scenario(name="alpha", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0,)),
            Scenario(name="beta", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0,)),
        ]
        campaign = Campaign(twins, results_dir=tmp_path)
        assert len(campaign.specs()) == 1
        assert campaign.specs()[0].scenario == "alpha"  # first declaration wins

    def test_cache_shared_across_scenario_names(self, tmp_path):
        first = Campaign(
            [Scenario(name="alpha", family="random_forest", sizes=(12,),
                      protocol="forest", seeds=(0,))],
            name="c1", results_dir=tmp_path).run()
        second = Campaign(
            [Scenario(name="beta", family="random_forest", sizes=(12,),
                      protocol="forest", seeds=(0,))],
            name="c2", results_dir=tmp_path).run()
        assert first.cache_misses == 1
        assert second.cache_hits == 1  # same physical run, different label
        # the replayed record carries the *requesting* campaign's provenance
        assert second.records[0].spec.scenario == "beta"
        assert second.records[0].output_digest == first.records[0].output_digest


class TestRun:
    def test_serial_run_produces_jsonl(self, tmp_path):
        result = Campaign(_scenarios(), name="t", results_dir=tmp_path).run()
        assert result.ok == len(result.records) == 5
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert set(first) == {"spec_version", "spec", "result", "timing", "cached"}

    def test_no_results_dir(self):
        result = Campaign(_scenarios(), results_dir=None).run()
        assert result.jsonl_path is None
        assert len(result.records) == 5

    def test_cache_replay(self, tmp_path):
        campaign = Campaign(_scenarios(), name="c", results_dir=tmp_path)
        cold = campaign.run()
        warm = campaign.run()
        assert (cold.cache_hits, cold.cache_misses) == (0, 5)
        assert (warm.cache_hits, warm.cache_misses) == (5, 0)
        assert all(r.cached for r in warm.records)
        assert [r.output_digest for r in warm.records] == \
               [r.output_digest for r in cold.records]

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        campaign = Campaign(_scenarios(), name="c", results_dir=tmp_path)
        campaign.run()
        for entry in (tmp_path / "cache").iterdir():
            entry.write_text("{not json")
        again = campaign.run()
        assert again.cache_misses == 5

    def test_use_cache_false(self, tmp_path):
        campaign = Campaign(_scenarios(), name="c", results_dir=tmp_path, use_cache=False)
        campaign.run()
        assert not (tmp_path / "cache").exists()
        assert campaign.run().cache_hits == 0


class TestDeterminism:
    """Acceptance: same spec + seeds => byte-identical JSONL modulo timing."""

    def test_repeat_runs_byte_identical(self, tmp_path):
        scenarios = _scenarios() + [
            Scenario(name="faulty", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0, 1, 2),
                     faults=FaultSpec(drop=0.3, duplicate=0.3, flip=0.3, seed=4)),
        ]
        a = Campaign(scenarios, name="a", results_dir=tmp_path / "a", use_cache=False).run()
        b = Campaign(scenarios, name="b", results_dir=tmp_path / "b", use_cache=False).run()
        assert _strip_nondeterministic(a.jsonl_path.read_text()) == \
               _strip_nondeterministic(b.jsonl_path.read_text())

    @pytest.mark.parametrize("backend", [ThreadPoolExecutor, ProcessPoolExecutor],
                             ids=["thread", "process"])
    def test_pooled_backends_match_serial(self, tmp_path, backend):
        scenarios = _scenarios()
        serial = Campaign(scenarios, name="s", results_dir=tmp_path / "s",
                          use_cache=False).run(SerialExecutor())
        with backend(2) as ex:
            pooled = Campaign(scenarios, name="p", results_dir=tmp_path / "p",
                              use_cache=False).run(ex)
        assert _strip_nondeterministic(serial.jsonl_path.read_text()) == \
               _strip_nondeterministic(pooled.jsonl_path.read_text())

    def test_cached_payload_matches_fresh(self, tmp_path):
        campaign = Campaign(_scenarios(), name="c", results_dir=tmp_path)
        cold = campaign.run()
        warm = campaign.run()
        assert _strip_nondeterministic(cold.jsonl_path.read_text()) == \
               _strip_nondeterministic(warm.jsonl_path.read_text())


class TestLoading:
    def test_builtin_names_all_instantiate(self, tmp_path):
        for name in registry.CAMPAIGN.names():
            campaign = builtin_campaign(name, results_dir=tmp_path)
            assert campaign.specs(), name

    def test_unknown_builtin(self):
        with pytest.raises(ProtocolError, match="unknown builtin"):
            builtin_campaign("nope")

    def test_load_from_json_file(self, tmp_path):
        spec = {
            "name": "from-file",
            "scenarios": [
                {"name": "deg", "family": "random_k_degenerate", "sizes": [16],
                 "protocol": "degeneracy", "seeds": [0, 1],
                 "family_params": {"k": 2}, "protocol_params": {"k": 2}},
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        campaign = load_campaign(path, results_dir=tmp_path)
        result = campaign.run()
        assert result.name == "from-file"
        assert result.ok == 2
        assert all(r.exact for r in result.records)

    def test_load_missing_source(self, tmp_path):
        with pytest.raises(ProtocolError, match="neither a builtin"):
            load_campaign(tmp_path / "absent.json")

    def test_campaign_dict_roundtrip(self, tmp_path):
        campaign = Campaign(_scenarios(), name="r", results_dir=tmp_path)
        clone = Campaign.from_dict(campaign.to_dict(), results_dir=tmp_path)
        assert [s.to_dict() for s in clone.scenarios] == \
               [s.to_dict() for s in campaign.scenarios]

    def test_smoke_builtin_runs(self, tmp_path):
        result = builtin_campaign("smoke", results_dir=tmp_path).run()
        assert len(result.records) == 8
        clean = [r for r in result.records if r.spec.faults is None]
        assert all(r.status == "ok" for r in clean)
        reconstructions = [r for r in clean if r.exact is not None]
        assert reconstructions and all(r.exact for r in reconstructions)
