"""repro.engine.shard: assignment determinism, manifest contract, merge.

The load-bearing invariants:

* shard assignment is a *partition* of the deduplicated grid — disjoint
  and covering for every builtin campaign and every shard count — and is
  a pure function of the spec content hash, so it survives scenario
  reordering and grid edits;
* the checkpoint manifest round-trips, is written atomically, and
  refuses stale ``SPEC_VERSION`` / edited grids with actionable messages;
* ``merge`` of *any* shard-count factorization reproduces the 1-shard
  output hash (modulo the ``timing``/``cached`` sidecars);
* a torn final stream line is detected and dropped, a torn middle line
  is corruption and raises.
"""

import json

import pytest

from repro import registry
from repro.engine import (
    Campaign,
    Scenario,
    ShardManifest,
    builtin_campaign,
    load_partial_records,
    manifest_path,
    merge_shards,
    shard_done_path,
    shard_of,
    shard_specs,
    shard_stream_path,
)
from repro.engine.scenario import SPEC_VERSION, execute_run
from repro.errors import ShardError, ShardIncomplete


def _tiny_scenarios():
    return [
        Scenario(name="forest", family="random_forest", sizes=(12, 16),
                 protocol="forest", seeds=(0, 1)),
        Scenario(name="conn", family="two_components", sizes=(12,),
                 protocol="agm_connectivity", seeds=(0,)),
    ]


def _strip(jsonl_text):
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


class TestAssignment:
    @pytest.mark.parametrize("name", sorted(registry.CAMPAIGN.names()))
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
    def test_partition_disjoint_and_covering(self, name, shards):
        specs = builtin_campaign(name, results_dir=None).specs()
        parts = shard_specs(specs, shards)
        assert len(parts) == shards
        flat = [s.content_hash() for part in parts for s in part]
        assert sorted(flat) == sorted(s.content_hash() for s in specs)
        assert len(set(flat)) == len(flat)  # disjoint
        for i, part in enumerate(parts):  # every member agrees on its owner
            assert all(shard_of(s.content_hash(), shards) == i for s in part)

    @pytest.mark.parametrize("name", sorted(registry.CAMPAIGN.names()))
    def test_stable_under_scenario_reordering(self, name):
        scenarios = registry.CAMPAIGN.get(name)()
        if len(scenarios) < 2:
            pytest.skip("single-scenario campaign cannot be reordered")
        fwd = Campaign(scenarios, results_dir=None).specs()
        rev = Campaign(list(reversed(scenarios)), results_dir=None).specs()
        assign_fwd = {s.content_hash(): shard_of(s.content_hash(), 3) for s in fwd}
        assign_rev = {s.content_hash(): shard_of(s.content_hash(), 3) for s in rev}
        assert assign_fwd == assign_rev

    def test_stable_under_grid_edits(self):
        before = Campaign(_tiny_scenarios(), results_dir=None).specs()
        grown = Campaign(
            _tiny_scenarios() + [Scenario(name="extra", family="random_tree",
                                          sizes=(16,), protocol="agm_connectivity",
                                          seeds=(5,))],
            results_dir=None,
        ).specs()
        owners_before = {s.content_hash(): shard_of(s.content_hash(), 4)
                         for s in before}
        owners_after = {s.content_hash(): shard_of(s.content_hash(), 4)
                        for s in grown}
        for h, owner in owners_before.items():
            assert owners_after[h] == owner  # nothing moved

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ShardError, match="shards must be >= 1"):
            shard_of("ab" * 12, 0)


class TestManifest:
    def test_round_trip(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        manifest = ShardManifest.from_specs("t", specs, 3)
        manifest.write(tmp_path)
        loaded = ShardManifest.load(tmp_path, "t")
        assert loaded == manifest
        assert loaded.spec_version == SPEC_VERSION
        assert loaded.assignments() == {
            s.content_hash(): shard_of(s.content_hash(), 3) for s in specs
        }

    def test_shard_hashes_partition_in_order(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        manifest = ShardManifest.from_specs("t", specs, 2)
        combined = manifest.shard_hashes(0) + manifest.shard_hashes(1)
        assert sorted(combined) == sorted(manifest.spec_hashes)
        for i in (0, 1):  # per-shard order preserves grid order
            owned = [h for h in manifest.spec_hashes
                     if shard_of(h, 2) == i]
            assert manifest.shard_hashes(i) == owned

    def test_missing_manifest_is_actionable(self, tmp_path):
        with pytest.raises(ShardError, match="no checkpoint manifest"):
            ShardManifest.load(tmp_path, "ghost")

    def test_newer_manifest_version_refused(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        d = ShardManifest.from_specs("t", specs, 1).to_dict()
        d["manifest_version"] = 99
        manifest_path(tmp_path, "t").write_text(json.dumps(d))
        with pytest.raises(ShardError, match="newer than this engine"):
            ShardManifest.load(tmp_path, "t")

    def test_stale_spec_version_refused_with_fix(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        manifest = ShardManifest.from_specs("t", specs, 1)
        manifest.spec_version = SPEC_VERSION - 1
        with pytest.raises(ShardError, match="SPEC_VERSION.*without --resume"):
            manifest.validate_for("t", 1)

    def test_campaign_rename_refused(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        manifest = ShardManifest.from_specs("t", specs, 1)
        with pytest.raises(ShardError, match="names campaign 't'"):
            manifest.validate_for("other", 1)

    def test_shard_count_change_refused(self, tmp_path):
        specs = Campaign(_tiny_scenarios(), results_dir=tmp_path).specs()
        manifest = ShardManifest.from_specs("t", specs, 2)
        with pytest.raises(ShardError, match="checkpointed with 2 shard"):
            manifest.validate_for("t", 3)

    def test_completion_reads_done_markers(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path)
        campaign.run(shards=2, shard_index=0)
        manifest = ShardManifest.load(tmp_path, "t")
        assert manifest.completion(tmp_path) == [True, False]


class TestPartialLoader:
    def _stream(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path,
                            use_cache=False)
        return campaign.run().jsonl_path

    def test_clean_stream_loads_fully(self, tmp_path):
        path = self._stream(tmp_path)
        records, torn, good = load_partial_records(path)
        assert (len(records), torn) == (5, 0)
        assert good == path.stat().st_size

    def test_missing_file_is_empty_stream(self, tmp_path):
        assert load_partial_records(tmp_path / "none.jsonl") == ([], 0, 0)

    @pytest.mark.parametrize("chop", [1, 10, 40])
    def test_torn_tail_detected_and_dropped(self, tmp_path, chop):
        path = self._stream(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-chop])
        records, torn, good = load_partial_records(path)
        assert torn == 1
        assert len(records) == 4
        assert data[:good].endswith(b"\n")

    def test_unterminated_but_parseable_tail_is_torn(self, tmp_path):
        # the newline itself was lost: the record parses but is not trusted
        path = self._stream(tmp_path)
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        records, torn, _good = load_partial_records(path)
        assert (len(records), torn) == (4, 1)

    def test_mid_stream_corruption_raises(self, tmp_path):
        path = self._stream(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-20]  # tear a *middle* line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ShardError, match="corrupt record mid-stream"):
            load_partial_records(path)

    def test_zero_byte_stream_is_empty_not_error(self, tmp_path):
        # A shard that crashed before its first fsync leaves a zero-byte
        # file; that is an empty stream to resume, not corruption.
        path = tmp_path / "zero.jsonl"
        path.write_bytes(b"")
        assert load_partial_records(path) == ([], 0, 0)

    def test_header_only_stream_is_one_torn_line(self, tmp_path):
        # Only the opening bytes of the first record landed: everything
        # is torn tail, nothing is trusted, nothing raises.
        path = tmp_path / "torn.jsonl"
        path.write_bytes(b'{"spec_version": 2, "spec"')
        records, torn, good = load_partial_records(path)
        assert (records, torn, good) == ([], 1, 0)

    def test_blank_lines_only_stream_is_empty(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_bytes(b"\n\n\n")
        records, torn, _good = load_partial_records(path)
        assert (records, torn) == ([], 0)


class TestMerge:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 8])
    def test_any_factorization_reproduces_single_run(self, tmp_path, shards):
        scenarios = _tiny_scenarios()
        mono = Campaign(scenarios, name="m", results_dir=tmp_path / "mono",
                        use_cache=False).run()
        sharded_dir = tmp_path / f"s{shards}"
        for index in range(shards):  # each shard as its own worker would
            Campaign(scenarios, name="m", results_dir=sharded_dir,
                     use_cache=False).run(shards=shards, shard_index=index)
        path, count = merge_shards(sharded_dir, "m")
        assert count == len(mono.records)
        assert _strip(path.read_text()) == _strip(mono.jsonl_path.read_text())

    def test_merge_before_completion_is_incomplete(self, tmp_path):
        Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path).run(
            shards=3, shard_index=0)
        with pytest.raises(ShardIncomplete, match="no completion mark"):
            merge_shards(tmp_path, "t")

    def test_merge_detects_count_mismatch(self, tmp_path):
        Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path).run(shards=2)
        stream = shard_stream_path(tmp_path, "t", 0, 2)
        lines = stream.read_text().splitlines()
        if len(lines) < 2:
            pytest.skip("shard 0 too small to drop a line")
        stream.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ShardIncomplete, match="marks .* complete"):
            merge_shards(tmp_path, "t")

    def test_merge_detects_torn_shard_despite_marker(self, tmp_path):
        Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path).run(shards=2)
        stream = shard_stream_path(tmp_path, "t", 0, 2)
        stream.write_bytes(stream.read_bytes()[:-5])
        with pytest.raises(ShardIncomplete, match="torn"):
            merge_shards(tmp_path, "t")

    def test_merge_detects_foreign_record(self, tmp_path):
        Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path).run(shards=2)
        foreign = next(Scenario(name="x", family="random_tree", sizes=(20,),
                                protocol="agm_connectivity", seeds=(9,)).expand())
        record = execute_run(foreign)
        stream = shard_stream_path(tmp_path, "t", 0, 2)
        n_lines = len(stream.read_text().splitlines())
        with stream.open("a") as fh:
            fh.write(json.dumps(record.to_json_dict(), sort_keys=True) + "\n")
        done = shard_done_path(tmp_path, "t", 0, 2)
        marker = json.loads(done.read_text())
        marker["records"] = n_lines + 1
        done.write_text(json.dumps(marker))
        with pytest.raises(ShardError, match="does not own"):
            merge_shards(tmp_path, "t")

    def test_merge_of_completed_monolithic_run_succeeds(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path,
                            use_cache=False)
        before = campaign.run().jsonl_path.read_text()
        path, count = merge_shards(tmp_path, "t")  # verify + canonical no-op
        assert count == 5
        assert _strip(path.read_text()) == _strip(before)

    def test_merge_of_interrupted_monolithic_run_is_retryable(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path,
                            use_cache=False)
        stream = campaign.run().jsonl_path
        stream.write_bytes(stream.read_bytes()[:-30])  # tear the tail
        with pytest.raises(ShardIncomplete, match="--resume"):
            merge_shards(tmp_path, "t")
        campaign.run(resume=True)  # the advice actually works
        path, count = merge_shards(tmp_path, "t")
        assert count == 5

    def test_auto_merge_path_equals_manual(self, tmp_path):
        scenarios = _tiny_scenarios()
        auto = Campaign(scenarios, name="a", results_dir=tmp_path / "a",
                        use_cache=False).run(shards=3)
        manual_dir = tmp_path / "b"
        for i in range(3):
            Campaign(scenarios, name="a", results_dir=manual_dir,
                     use_cache=False).run(shards=3, shard_index=i)
        path, _ = merge_shards(manual_dir, "a")
        assert _strip(auto.jsonl_path.read_text()) == _strip(path.read_text())
        # auto-merge hands records back in deduplicated grid order
        manifest = ShardManifest.load(tmp_path / "a", "a")
        assert [r.spec.content_hash() for r in auto.records] == manifest.spec_hashes


class TestRunValidation:
    def test_shard_index_requires_shards(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), results_dir=tmp_path)
        with pytest.raises(ShardError, match="shard_index requires shards"):
            campaign.run(shard_index=0)

    def test_shard_index_out_of_range(self, tmp_path):
        campaign = Campaign(_tiny_scenarios(), results_dir=tmp_path)
        with pytest.raises(ShardError, match="out of range"):
            campaign.run(shards=2, shard_index=2)

    def test_sharding_requires_results_dir(self):
        campaign = Campaign(_tiny_scenarios(), results_dir=None)
        with pytest.raises(ShardError, match="need a results_dir"):
            campaign.run(shards=2)

    def test_resume_requires_results_dir(self):
        campaign = Campaign(_tiny_scenarios(), results_dir=None)
        with pytest.raises(ShardError, match="need a results_dir"):
            campaign.run(resume=True)

    def test_every_persisted_run_writes_a_manifest(self, tmp_path):
        Campaign(_tiny_scenarios(), name="t", results_dir=tmp_path).run()
        manifest = ShardManifest.load(tmp_path, "t")
        assert manifest.shards == 1
        assert len(manifest.spec_hashes) == 5
