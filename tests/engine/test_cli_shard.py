"""CLI shard/resume/merge surface: exit codes, torn-line regression, parity.

Mirrors the PR 2 exit-code conventions: 0 success, 1 gate-style failure
(``merge`` before every shard finished — retryable), 2 usage error (bad
shard geometry, ``--resume`` without a manifest, a stale ``SPEC_VERSION``
manifest).  Errors are messages, never tracebacks.
"""

import json

import pytest

from repro.cli import main
from repro.engine import ShardManifest, builtin_campaign, manifest_path


def _strip(jsonl_text):
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


class TestUsageErrors:
    def test_shard_index_out_of_range(self, tmp_path, capsys):
        code = main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "3", "--shard-index", "3"])
        assert code == 2
        err = capsys.readouterr().err
        assert "out of range" in err
        assert "Traceback" not in err

    def test_negative_shard_index(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "2", "--shard-index", "-1"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_shard_index_without_shards(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shard-index", "0"]) == 2
        assert "shard_index requires shards" in capsys.readouterr().err

    def test_zero_shards(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "0"]) == 2
        assert "shards must be >= 1" in capsys.readouterr().err

    def test_resume_with_missing_manifest(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert "no checkpoint manifest" in err
        assert "without --resume" in err  # the fix is named

    def test_resume_against_stale_spec_version(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        path = manifest_path(tmp_path, "smoke")
        manifest = json.loads(path.read_text())
        manifest["spec_version"] -= 1  # a manifest from an older engine
        path.write_text(json.dumps(manifest))
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert "SPEC_VERSION" in err
        assert "restart the campaign" in err  # actionable, not just refused

    def test_merge_with_missing_manifest(self, tmp_path, capsys):
        assert main(["merge", "ghost", "--results-dir", str(tmp_path)]) == 2
        assert "no checkpoint manifest" in capsys.readouterr().err


class TestMergeGate:
    def test_merge_before_all_shards_is_exit_1(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "3", "--shard-index", "0"]) == 0
        capsys.readouterr()
        assert main(["merge", "smoke", "--results-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "not ready" in err
        assert "shards complete: 1/3" in err

    def test_merge_after_all_shards_is_exit_0(self, tmp_path, capsys):
        for i in range(3):
            assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                         "--shards", "3", "--shard-index", str(i)]) == 0
        capsys.readouterr()
        assert main(["merge", "smoke", "--results-dir", str(tmp_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 8
        assert payload["jsonl"].endswith("smoke.jsonl")


class TestAcceptance:
    """The ISSUE acceptance criterion, driven entirely through the CLI."""

    def test_three_shard_merge_equals_single_run(self, tmp_path, capsys):
        mono_dir, shard_dir = tmp_path / "mono", tmp_path / "sharded"
        assert main(["campaign", "smoke", "--results-dir", str(mono_dir),
                     "--no-cache"]) == 0
        for i in range(3):  # each shard run separately, as CI matrix jobs do
            assert main(["campaign", "smoke", "--results-dir", str(shard_dir),
                         "--no-cache", "--shards", "3",
                         "--shard-index", str(i)]) == 0
        assert main(["merge", "smoke", "--results-dir", str(shard_dir)]) == 0
        capsys.readouterr()
        assert _strip((shard_dir / "smoke.jsonl").read_text()) == \
               _strip((mono_dir / "smoke.jsonl").read_text())

    def test_torn_final_line_resumed_not_crashed(self, tmp_path, capsys):
        """Regression: a torn tail is detected and re-run on --resume."""
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--no-cache", "--json"]) == 0
        clean_lines = _strip((tmp_path / "smoke.jsonl").read_text())
        stream = tmp_path / "smoke.jsonl"
        stream.write_bytes(stream.read_bytes()[:-23])  # kill -9 mid-write
        capsys.readouterr()
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--no-cache", "--resume", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["resumed"] == 7
        assert summary["cache_misses"] == 1  # only the torn record re-ran
        assert _strip(stream.read_text()) == clean_lines

    def test_shard_summaries_report_geometry(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "2", "--shard-index", "1", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2
        assert summary["shard_index"] == 1

    def test_manifest_completion_snapshot_tracks_markers(self, tmp_path):
        for i in (0, 2):
            main(["campaign", "smoke", "--results-dir", str(tmp_path),
                  "--shards", "3", "--shard-index", str(i)])
        manifest = ShardManifest.load(tmp_path, "smoke")
        assert manifest.completion(tmp_path) == [True, False, True]

    def test_builtin_still_runs_unsharded(self, tmp_path, capsys):
        """The monolithic path is untouched by the new flags."""
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["runs"] == 8
        assert "shards" not in summary
