"""Pins the definition of the ``cache_hit_ratio`` gauge.

The contract (referenced from the gauge site in
``repro/engine/campaign.py``): the ratio is **hits over landed runs** —
``runs_cached / (runs_cached + runs_started)`` — so it is always
derivable from the additive counters in the same snapshot.  Resumed
replays appear in neither term, exactly as the PR 6 progress reporter
excludes cached+resumed records from its rate.

Because the ratio is counter-derived, a fleet-level registry that merges
per-shard snapshots must *recompute* it rather than trust the merged
gauge (gauge merges are last-write-wins, which would report whichever
shard landed last).  ``Scheduler.metrics_snapshot`` is pinned to do so.
"""

import pytest

from repro.api import Session
from repro.obs.metrics import MetricsRegistry
from repro.serve.queue import Scheduler
from repro.serve.store import JobStore


def _session(tmp_path):
    return (Session("hit-ratio")
            .graphs("random_forest", n=12, seeds=(0, 1, 2))
            .protocol("forest")
            .persist(tmp_path / "results", use_cache=True))


class TestCampaignGauge:
    def test_cold_run_is_zero_and_counter_derived(self, tmp_path):
        result = _session(tmp_path).run().result
        snap = result.metrics
        assert snap["gauges"]["cache_hit_ratio"] == 0.0
        assert snap["counters"]["runs_started"] == 3
        assert "runs_cached" not in snap["counters"]

    def test_warm_run_is_one_and_counter_derived(self, tmp_path):
        _session(tmp_path).run()
        snap = _session(tmp_path).run().result.metrics
        hits = snap["counters"]["runs_cached"]
        started = snap["counters"].get("runs_started", 0)
        assert (hits, started) == (3, 0)
        assert snap["gauges"]["cache_hit_ratio"] == 1.0

    def test_mixed_run_matches_counter_formula(self, tmp_path):
        (Session("hit-ratio")
         .graphs("random_forest", n=12, seeds=(0,))
         .protocol("forest")
         .persist(tmp_path / "results", use_cache=True)
         .run())
        snap = _session(tmp_path).run().result.metrics  # 1 hit, 2 misses
        hits = snap["counters"]["runs_cached"]
        started = snap["counters"]["runs_started"]
        assert (hits, started) == (1, 2)
        assert snap["gauges"]["cache_hit_ratio"] == pytest.approx(hits / (hits + started))


class TestFleetRecompute:
    @staticmethod
    def _shard_snapshot(started: int, cached: int) -> dict:
        reg = MetricsRegistry()
        if started:
            reg.inc("runs_started", started)
        if cached:
            reg.inc("runs_cached", cached)
        landed = started + cached
        reg.set_gauge("cache_hit_ratio", (cached / landed) if landed else 0.0)
        return reg.to_dict()

    def test_merged_gauge_is_recomputed_not_last_write_wins(self, tmp_path):
        sched = Scheduler(JobStore(tmp_path), workers=0, executor="serial")
        sched.metrics.merge(self._shard_snapshot(started=4, cached=0))  # ratio 0.0
        sched.metrics.merge(self._shard_snapshot(started=0, cached=4))  # ratio 1.0
        snap = sched.metrics_snapshot()
        # last-write-wins would report 1.0; the fleet landed 4 hits / 8 runs
        assert snap["gauges"]["cache_hit_ratio"] == pytest.approx(0.5)
        assert snap["counters"]["runs_cached"] == 4
        assert snap["counters"]["runs_started"] == 4

    def test_no_landed_runs_reports_zero(self, tmp_path):
        sched = Scheduler(JobStore(tmp_path), workers=0, executor="serial")
        assert sched.metrics_snapshot()["gauges"]["cache_hit_ratio"] == 0.0
