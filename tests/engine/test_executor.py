"""Executor backends: ordered maps, batched local phases, referee parity."""

import pytest

from repro.engine.executor import (
    EXECUTOR_KINDS,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    _chunk_ids,
    default_jobs,
    make_executor,
)
from repro.errors import FrugalityViolation, ProtocolError
from repro.graphs.generators import random_forest, random_k_degenerate
from repro.graphs.labeled import LabeledGraph
from repro.model import Referee
from repro.protocols import DegeneracyReconstructionProtocol, ForestReconstructionProtocol


def _square(x):
    return x * x


ALL_BACKENDS = [SerialExecutor, ThreadPoolExecutor, ProcessPoolExecutor]


@pytest.fixture(params=ALL_BACKENDS, ids=lambda c: c.kind)
def executor(request):
    if request.param is SerialExecutor:
        ex = SerialExecutor()
    else:
        ex = request.param(2)
    with ex:
        yield ex


class TestMap:
    def test_preserves_order(self, executor):
        assert executor.map(_square, range(20)) == [x * x for x in range(20)]

    def test_empty(self, executor):
        assert executor.map(_square, []) == []

    def test_exception_propagates(self, executor):
        with pytest.raises(ZeroDivisionError):
            executor.map(_raise_on_three, [1, 2, 3, 4])


def _raise_on_three(x):
    if x == 3:
        raise ZeroDivisionError("three")
    return x


class TestMapLocal:
    def test_matches_serial_loop(self, executor):
        g = random_k_degenerate(40, 2, seed=5)
        protocol = DegeneracyReconstructionProtocol(2)
        expected = [(i, protocol.local(g.n, i, g.neighbors(i))) for i in g.vertices()]
        assert executor.map_local(protocol, g) == expected

    def test_empty_graph(self, executor):
        protocol = ForestReconstructionProtocol()
        assert executor.map_local(protocol, LabeledGraph(0)) == []

    def test_chunking_covers_all_ids(self):
        for n, chunks in [(1, 1), (7, 3), (10, 4), (10, 40), (100, 7)]:
            parts = _chunk_ids(list(range(1, n + 1)), chunks)
            assert [i for part in parts for i in part] == list(range(1, n + 1))
            assert all(part for part in parts)


class TestRefereeParity:
    """Acceptance: an engine-backed round equals Referee.run bit-for-bit."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda c: c.kind)
    def test_report_identical_to_plain_referee(self, backend):
        g = random_forest(60, 4, seed=9)
        protocol = ForestReconstructionProtocol()
        base = Referee(shuffle_delivery=True, shuffle_seed=3).run(protocol, g)
        ex = SerialExecutor() if backend is SerialExecutor else backend(2)
        with ex:
            report = Referee(shuffle_delivery=True, shuffle_seed=3, executor=ex).run(protocol, g)
        assert report.output == base.output == g
        assert report.per_vertex_bits == base.per_vertex_bits
        assert report.max_message_bits == base.max_message_bits
        assert report.total_message_bits == base.total_message_bits

    def test_budget_violation_same_vertex(self):
        g = random_forest(30, 3, seed=2)
        protocol = ForestReconstructionProtocol()
        with pytest.raises(FrugalityViolation) as plain:
            Referee(budget_bits=1).run(protocol, g)
        with SerialExecutor() as ex:
            with pytest.raises(FrugalityViolation) as engined:
                Referee(budget_bits=1, executor=ex).run(protocol, g)
        assert plain.value.vertex == engined.value.vertex
        assert plain.value.bits == engined.value.bits


class TestFactory:
    def test_known_kinds(self):
        assert set(EXECUTOR_KINDS) == {"serial", "thread", "process"}
        for kind in EXECUTOR_KINDS:
            with make_executor(kind, 2) as ex:
                assert ex.kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown executor"):
            make_executor("gpu")

    def test_bad_jobs(self):
        with pytest.raises(ProtocolError, match="jobs"):
            ThreadPoolExecutor(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_pool_reusable_after_close(self):
        ex = ThreadPoolExecutor(2)
        assert ex.map(_square, [2]) == [4]
        ex.close()
        assert ex.map(_square, [3]) == [9]  # lazily rebuilds the pool
        ex.close()
