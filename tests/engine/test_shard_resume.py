"""Crash/resume battery: kill after K of N runs, resume, compare bytes.

The acceptance invariant: a campaign killed mid-flight and resumed
produces a JSONL byte-identical (modulo the ``timing``/``cached``
sidecars) to an uninterrupted run, re-executing *only* the specs whose
records were not yet durable.  The kill is simulated by patching the
executor-facing ``execute_run`` to raise after K successful runs —
exactly what ``kill -9`` leaves behind, because the stream writer fsyncs
every line.

K, N, shard count, and the kill schedule are fuzzed with seeded sweeps
(`random.Random(seed)`), so failures replay exactly.
"""

import json
import random

import pytest

import repro.engine.campaign as campaign_module
from repro.engine import (
    Campaign,
    Scenario,
    ThreadPoolExecutor,
    merge_shards,
)
from repro.engine.scenario import execute_run


class SimulatedCrash(RuntimeError):
    """Stands in for kill -9: escapes the engine entirely."""


def _grid(n_seeds: int, *, sizes=(12,)) -> list[Scenario]:
    """A forest grid with ``n_seeds`` seeds per size — N = len(sizes)*n_seeds."""
    return [
        Scenario(name="forest", family="random_forest", sizes=tuple(sizes),
                 protocol="forest", seeds=tuple(range(n_seeds))),
    ]


def _strip(jsonl_text):
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


@pytest.fixture()
def crash_after(monkeypatch):
    """Patch the campaign's execute_run to blow up after K successes."""

    def arm(k: int):
        state = {"left": k}

        def crashing(spec):
            if state["left"] <= 0:
                raise SimulatedCrash(f"killed after {k} run(s)")
            state["left"] -= 1
            return execute_run(spec)

        monkeypatch.setattr(campaign_module, "execute_run", crashing)
        return state

    yield arm
    monkeypatch.setattr(campaign_module, "execute_run", execute_run)


class TestMonolithicResume:
    def test_kill_resume_matches_uninterrupted(self, tmp_path, crash_after):
        scenarios = _grid(6)
        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        crash_after(3)
        interrupted = Campaign(scenarios, name="c", results_dir=tmp_path / "r",
                               use_cache=False)
        with pytest.raises(SimulatedCrash):
            interrupted.run()
        durable = (tmp_path / "r" / "c.jsonl").read_text().splitlines()
        assert len(durable) == 3  # fsync-per-record made exactly K durable

        crash_after(10**9)  # disarm
        resumed = Campaign(scenarios, name="c", results_dir=tmp_path / "r",
                           use_cache=False).run(resume=True)
        assert resumed.resumed == 3
        assert resumed.cache_misses == 3  # only the missing specs re-ran
        assert _strip((tmp_path / "r" / "c.jsonl").read_text()) == \
               _strip(clean.jsonl_path.read_text())

    def test_resume_of_complete_run_recomputes_nothing(self, tmp_path, crash_after):
        scenarios = _grid(4)
        Campaign(scenarios, name="c", results_dir=tmp_path, use_cache=False).run()
        crash_after(0)  # any execution would crash — there must be none
        again = Campaign(scenarios, name="c", results_dir=tmp_path,
                         use_cache=False).run(resume=True)
        assert again.resumed == len(again.records) == 4
        assert again.cache_misses == 0

    def test_double_crash_double_resume(self, tmp_path, crash_after):
        scenarios = _grid(8)
        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        for k in (2, 3):
            crash_after(k)
            with pytest.raises(SimulatedCrash):
                Campaign(scenarios, name="c", results_dir=tmp_path / "r",
                         use_cache=False).run(resume=(k != 2))
        crash_after(10**9)
        final = Campaign(scenarios, name="c", results_dir=tmp_path / "r",
                         use_cache=False).run(resume=True)
        assert final.resumed == 5  # 2 survived the first crash, 3 the second
        assert _strip((tmp_path / "r" / "c.jsonl").read_text()) == \
               _strip(clean.jsonl_path.read_text())

    def test_torn_tail_re_executed_not_trusted(self, tmp_path, crash_after):
        scenarios = _grid(5)
        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        run_dir = tmp_path / "r"
        Campaign(scenarios, name="c", results_dir=run_dir, use_cache=False).run()
        stream = run_dir / "c.jsonl"
        stream.write_bytes(stream.read_bytes()[:-17])  # tear the tail
        resumed = Campaign(scenarios, name="c", results_dir=run_dir,
                           use_cache=False).run(resume=True)
        assert resumed.resumed == 4
        assert resumed.cache_misses == 1  # the torn spec re-ran
        assert _strip(stream.read_text()) == _strip(clean.jsonl_path.read_text())


class TestShardedResume:
    @pytest.mark.parametrize("sweep_seed", range(6))
    def test_fuzzed_kill_points_across_shards(self, tmp_path, crash_after,
                                              sweep_seed):
        """Seeded sweep over (N, shards, K, kill schedule)."""
        rng = random.Random(0xC0FFEE + sweep_seed)
        n_seeds = rng.randint(3, 7)
        shards = rng.randint(2, 4)
        scenarios = _grid(n_seeds, sizes=(12, 14))
        n_specs = 2 * n_seeds

        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        shard_dir = tmp_path / "sharded"

        for index in range(shards):
            campaign = Campaign(scenarios, name="c", results_dir=shard_dir,
                                use_cache=False)
            k = rng.randint(0, n_specs)  # may exceed the shard: no crash then
            crash_after(k)
            crashed = False
            try:
                campaign.run(shards=shards, shard_index=index)
            except SimulatedCrash:
                crashed = True
            if crashed:
                crash_after(10**9)
                resumed = Campaign(scenarios, name="c", results_dir=shard_dir,
                                   use_cache=False).run(
                    shards=shards, shard_index=index, resume=True)
                assert resumed.resumed == k  # exactly the durable prefix

        path, count = merge_shards(shard_dir, "c")
        assert count == n_specs
        assert _strip(path.read_text()) == _strip(clean.jsonl_path.read_text())

    def test_resume_skips_completed_shards_entirely(self, tmp_path, crash_after):
        scenarios = _grid(6)
        shard_dir = tmp_path / "s"
        Campaign(scenarios, name="c", results_dir=shard_dir,
                 use_cache=False).run(shards=2, shard_index=0)
        crash_after(0)
        again = Campaign(scenarios, name="c", results_dir=shard_dir,
                         use_cache=False).run(shards=2, shard_index=0,
                                              resume=True)
        assert again.cache_misses == 0
        assert again.resumed == len(again.records)

    def test_all_shard_resume_after_kill(self, tmp_path, crash_after):
        """shards=N without an index: one process, checkpointed end to end."""
        scenarios = _grid(7)
        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        shard_dir = tmp_path / "s"
        crash_after(4)
        with pytest.raises(SimulatedCrash):
            Campaign(scenarios, name="c", results_dir=shard_dir,
                     use_cache=False).run(shards=3)
        crash_after(10**9)
        final = Campaign(scenarios, name="c", results_dir=shard_dir,
                         use_cache=False).run(shards=3, resume=True)
        assert final.resumed == 4
        assert final.cache_misses == len(clean.records) - 4
        assert _strip(final.jsonl_path.read_text()) == \
               _strip(clean.jsonl_path.read_text())


class TestExecutorBackends:
    def test_thread_pool_resume_matches_serial(self, tmp_path, crash_after):
        scenarios = _grid(6)
        clean = Campaign(scenarios, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        run_dir = tmp_path / "t"
        crash_after(3)
        with ThreadPoolExecutor(2) as ex:
            with pytest.raises(SimulatedCrash):
                Campaign(scenarios, name="c", results_dir=run_dir,
                         use_cache=False).run(ex)
        durable, = [len((run_dir / "c.jsonl").read_text().splitlines())]
        assert durable <= 3  # never MORE durable records than successes
        crash_after(10**9)
        with ThreadPoolExecutor(2) as ex:
            resumed = Campaign(scenarios, name="c", results_dir=run_dir,
                               use_cache=False).run(ex, resume=True)
        assert _strip((run_dir / "c.jsonl").read_text()) == \
               _strip(clean.jsonl_path.read_text())
        assert resumed.resumed == durable

    def test_cache_and_resume_compose(self, tmp_path, crash_after):
        """With the cache on, resumed *and* cached work are both replayed."""
        scenarios = _grid(6)
        run_dir = tmp_path / "r"
        warm = Campaign(scenarios, name="c", results_dir=run_dir).run()
        assert warm.cache_misses == 6
        crash_after(0)  # cache hits never call execute_run
        # new campaign, same dir: every pending spec is served by the cache
        stream = run_dir / "c.jsonl"
        stream.write_bytes(b"")  # lose the stream but keep the cache
        again = Campaign(scenarios, name="c", results_dir=run_dir).run(resume=True)
        assert again.resumed == 0
        assert again.cache_hits == 6
        assert again.cache_misses == 0


class TestResumeSurvivesGridChanges:
    """Hash-based membership means checkpoints outlive grid edits."""

    def test_resume_after_scenario_reordering(self, tmp_path, crash_after):
        scenarios = [
            Scenario(name="a", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0, 1, 2)),
            Scenario(name="b", family="random_tree", sizes=(12, 14),
                     protocol="agm_connectivity", seeds=(0,)),
        ]
        Campaign(scenarios, name="c", results_dir=tmp_path,
                 use_cache=False).run()
        crash_after(0)  # nothing may execute: every record must replay
        reordered = Campaign(list(reversed(scenarios)), name="c",
                             results_dir=tmp_path, use_cache=False)
        resumed = reordered.run(resume=True)
        assert resumed.resumed == 5
        assert resumed.cache_misses == 0
        # the rewritten stream is canonical for the *new* grid order
        crash_after(10**9)
        clean = Campaign(list(reversed(scenarios)), name="c",
                         results_dir=tmp_path / "clean", use_cache=False).run()
        assert _strip((tmp_path / "c.jsonl").read_text()) == \
               _strip(clean.jsonl_path.read_text())

    def test_resume_after_adding_a_scenario(self, tmp_path, crash_after):
        base = [Scenario(name="a", family="random_forest", sizes=(12,),
                         protocol="forest", seeds=(0, 1, 2))]
        Campaign(base, name="c", results_dir=tmp_path, use_cache=False).run()
        grown = base + [Scenario(name="b", family="random_tree", sizes=(12,),
                                 protocol="agm_connectivity", seeds=(0,))]
        crash_after(1)  # exactly the one new spec may execute
        resumed = Campaign(grown, name="c", results_dir=tmp_path,
                           use_cache=False).run(resume=True)
        assert resumed.resumed == 3
        assert resumed.cache_misses == 1
        assert len(resumed.records) == 4

    def test_resume_after_removing_a_scenario_drops_stale_records(
            self, tmp_path, crash_after):
        scenarios = [
            Scenario(name="a", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0, 1)),
            Scenario(name="b", family="random_tree", sizes=(12,),
                     protocol="agm_connectivity", seeds=(0,)),
        ]
        Campaign(scenarios, name="c", results_dir=tmp_path,
                 use_cache=False).run()
        crash_after(0)
        shrunk = Campaign(scenarios[:1], name="c", results_dir=tmp_path,
                          use_cache=False)
        resumed = shrunk.run(resume=True)
        assert resumed.resumed == len(resumed.records) == 2
        # the stale connectivity record is gone from the rewritten stream
        lines = (tmp_path / "c.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(l)["spec"]["protocol"] == "forest" for l in lines)

    def test_sharded_resume_after_grid_growth(self, tmp_path, crash_after):
        base = _grid(4)
        shard_dir = tmp_path / "s"
        for i in range(2):
            Campaign(base, name="c", results_dir=shard_dir,
                     use_cache=False).run(shards=2, shard_index=i)
        grown = _grid(6)  # two new seeds join the grid
        crash_after(2)  # only the two new specs may execute (across shards)
        total_resumed = total_missed = 0
        for i in range(2):
            r = Campaign(grown, name="c", results_dir=shard_dir,
                         use_cache=False).run(shards=2, shard_index=i,
                                              resume=True)
            total_resumed += r.resumed
            total_missed += r.cache_misses
        assert total_resumed == 4
        assert total_missed == 2
        path, count = merge_shards(shard_dir, "c")
        assert count == 6
        crash_after(10**9)
        clean = Campaign(grown, name="c", results_dir=tmp_path / "clean",
                         use_cache=False).run()
        assert _strip(path.read_text()) == _strip(clean.jsonl_path.read_text())
