"""RNG hygiene: the engine never touches the global ``random`` state.

Every internal draw — graph generation inside workers, shuffle delivery,
fault injection, sketch seeding — must come from a dedicated
``random.Random`` seeded by the spec.  The guard: seed the global module,
record the sequence it *would* produce, do a pile of engine work, then draw
for real and compare.  Any engine call that consumed or reseeded the global
stream shifts the sequence and fails the test.
"""

import random

from repro.engine import Campaign, FaultSpec, Scenario, SerialExecutor, execute_run
from repro.graphs.generators import random_tree
from repro.model import Message, Referee
from repro.sketching import AGMConnectivityProtocol

SENTINEL_SEED = 999
DRAWS = 8


def _expected_sequence():
    random.seed(SENTINEL_SEED)
    expected = [random.random() for _ in range(DRAWS)]
    random.seed(SENTINEL_SEED)  # rewind so the engine work starts from here
    return expected


def _assert_untouched(expected):
    assert [random.random() for _ in range(DRAWS)] == expected, \
        "global random state was consumed or reseeded"


def test_engine_campaign_run_leaves_global_rng_alone(tmp_path):
    expected = _expected_sequence()
    scenarios = [
        Scenario(name="forest", family="random_forest", sizes=(12,),
                 protocol="forest", seeds=(0, 1), shuffle_delivery=True),
        Scenario(name="sketch", family="random_tree", sizes=(12,),
                 protocol="agm_connectivity", seeds=(0,),
                 protocol_params={"sketch_seed": 3}),
        Scenario(name="faulty", family="random_forest", sizes=(12,),
                 protocol="forest", seeds=(0,),
                 faults=FaultSpec(drop=0.3, duplicate=0.3, flip=0.3, seed=2)),
    ]
    Campaign(scenarios, name="hygiene", results_dir=tmp_path).run(SerialExecutor())
    _assert_untouched(expected)


def test_fault_injection_leaves_global_rng_alone():
    expected = _expected_sequence()
    spec = FaultSpec(drop=0.4, duplicate=0.4, flip=0.4, seed=8)
    tagged = [(i, Message(i % 256, 8)) for i in range(1, 30)]
    for run_seed in range(5):
        spec.injector(run_seed).apply(tagged)
    _assert_untouched(expected)


def test_unseeded_shuffle_delivery_leaves_global_rng_alone():
    expected = _expected_sequence()
    g = random_tree(16, seed=3)
    report = Referee(shuffle_delivery=True).run(AGMConnectivityProtocol(seed=0), g)
    assert isinstance(report.output, bool)
    _assert_untouched(expected)


def test_execute_run_leaves_global_rng_alone():
    expected = _expected_sequence()
    spec = next(
        Scenario(name="s", family="two_components", sizes=(14,),
                 protocol="agm_connectivity", seeds=(4,), shuffle_delivery=True,
                 faults=FaultSpec(flip=0.2, seed=1)).expand()
    )
    record = execute_run(spec)
    assert record.status in ("ok", "error")
    _assert_untouched(expected)


def test_identical_specs_identical_records_despite_global_seed_noise(tmp_path):
    """Reseeding the global RNG between runs must not change any record."""
    scenario = Scenario(name="s", family="random_forest", sizes=(12,),
                        protocol="forest", seeds=(0,),
                        faults=FaultSpec(drop=0.2, seed=3))
    random.seed(1)
    rec1 = execute_run(next(scenario.expand()))
    random.seed(2)
    rec2 = execute_run(next(scenario.expand()))
    assert rec1.to_json_dict()["result"] == rec2.to_json_dict()["result"]
