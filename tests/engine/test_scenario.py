"""Scenario grids, run specs, content hashes, and worker-side execution."""

import pytest

from repro.engine.faults import FaultSpec
from repro import registry
from repro.engine.scenario import (
    RunRecord,
    RunSpec,
    Scenario,
    execute_run,
    output_digest,
)
from repro.errors import ProtocolError
from repro.graphs.labeled import LabeledGraph


def _scenario(**overrides):
    kwargs = dict(
        name="s", family="random_forest", sizes=(12, 16), protocol="forest", seeds=(0, 1)
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestScenario:
    def test_unknown_family_rejected(self):
        with pytest.raises(ProtocolError, match="unknown graph family"):
            _scenario(family="petersen")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError, match="unknown protocol"):
            _scenario(protocol="telepathy")

    def test_empty_grid_rejected(self):
        with pytest.raises(ProtocolError, match="sizes"):
            _scenario(sizes=())
        with pytest.raises(ProtocolError, match="seeds"):
            _scenario(seeds=())

    def test_expand_order_sizes_major(self):
        specs = list(_scenario().expand())
        assert [(s.n, s.seed) for s in specs] == [(12, 0), (12, 1), (16, 0), (16, 1)]
        assert all(s.scenario == "s" for s in specs)

    def test_params_normalized_and_hashable(self):
        a = _scenario(family_params={"n_trees": 2}, protocol_params={})
        b = _scenario(family_params=(("n_trees", 2),))
        assert a == b and hash(a) == hash(b)

    def test_dict_roundtrip(self):
        s = _scenario(
            family_params={"n_trees": 3},
            budget_bits=64,
            shuffle_delivery=True,
            faults=FaultSpec(drop=0.1, seed=2),
        )
        assert Scenario.from_dict(s.to_dict()) == s

    def test_from_dict_rejects_unknown_and_missing(self):
        with pytest.raises(ProtocolError, match="unknown Scenario"):
            Scenario.from_dict({**_scenario().to_dict(), "colour": "red"})
        with pytest.raises(ProtocolError, match="missing required"):
            Scenario.from_dict({"name": "x", "family": "path", "sizes": [4]})

    def test_every_registry_entry_builds(self):
        for family in registry.GRAPH_FAMILY.names():
            g = registry.GRAPH_FAMILY.build(family, 8, 0)
            assert isinstance(g, LabeledGraph)
            assert g.n == 8, f"family {family} built {g.n} vertices for size 8"
        for protocol in registry.PROTOCOL.names():
            p = registry.PROTOCOL.build(protocol, 8)
            assert hasattr(p, "local") and hasattr(p, "global_")

    def test_grid_exact_sizes_including_primes(self):
        for n in (1, 7, 12, 13, 16):
            assert registry.GRAPH_FAMILY.build("grid", n, 0).n == n

    def test_hypercube_rejects_non_power_of_two(self):
        with pytest.raises(ProtocolError, match="power-of-two"):
            registry.GRAPH_FAMILY.build("hypercube", 100, 0)

    def test_unsatisfiable_size_recorded_not_raised(self):
        spec = next(
            _scenario(family="hypercube", sizes=(100,), protocol="full_adjacency").expand()
        )
        record = execute_run(spec)
        assert record.status == "error"
        assert "power-of-two" in record.error


class TestRunSpec:
    def test_content_hash_stable_and_sensitive(self):
        spec = next(_scenario().expand())
        same = next(_scenario().expand())
        assert spec.content_hash() == same.content_hash()
        other = next(_scenario(seeds=(5,)).expand())
        assert spec.content_hash() != other.content_hash()

    def test_content_hash_ignores_scenario_label(self):
        a = next(_scenario(name="alpha").expand())
        b = next(_scenario(name="beta").expand())
        assert a.content_hash() == b.content_hash()  # same physical run

    def test_dict_roundtrip(self):
        spec = next(_scenario(faults=FaultSpec(flip=0.5)).expand())
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_builds_deterministic_graph(self):
        spec = next(_scenario().expand())
        assert spec.build_graph() == spec.build_graph()


class TestExecuteRun:
    def test_ok_reconstruction(self):
        record = execute_run(next(_scenario().expand()))
        assert record.status == "ok"
        assert record.output_kind == "graph"
        assert record.exact is True
        assert record.graph_n == 12
        assert record.max_message_bits > 0
        assert "wall_seconds" in record.timing

    def test_decision_protocol_digest(self):
        spec = next(
            _scenario(family="random_tree", protocol="agm_connectivity", sizes=(16,)).expand()
        )
        record = execute_run(spec)
        assert record.status == "ok"
        assert record.output_kind == "bool"
        assert record.output_digest in ("True", "False")
        assert record.exact is None

    def test_budget_violation_recorded_not_raised(self):
        record = execute_run(next(_scenario(budget_bits=1).expand()))
        assert record.status == "violation"
        assert "budget" in record.error

    def test_fault_induced_decode_error_recorded(self):
        spec = next(_scenario(sizes=(16,), faults=FaultSpec(drop=1.0, seed=1)).expand())
        record = execute_run(spec)
        assert record.status in ("error", "ok")  # decoder may fail or mis-reconstruct
        if record.status == "ok":
            assert record.exact is False

    def test_record_json_roundtrip(self):
        record = execute_run(next(_scenario().expand()))
        clone = RunRecord.from_json_dict(record.to_json_dict())
        assert clone.spec == record.spec
        assert clone.status == record.status
        assert clone.output_digest == record.output_digest
        assert clone.faults == record.faults


class TestOutputDigest:
    def test_graph_digest_tracks_structure(self):
        g1 = LabeledGraph(3, [(1, 2)])
        g2 = LabeledGraph(3, [(1, 3)])
        assert output_digest(g1) != output_digest(g2)
        assert output_digest(g1) == output_digest(LabeledGraph(3, [(1, 2)]))

    def test_bool_digest(self):
        assert output_digest(True) == ("bool", "True")

    def test_other_types(self):
        kind, digest = output_digest([1, 2, 3])
        assert kind == "list" and len(digest) == 16
