"""Fault injection: validation, determinism, and channel semantics."""

import pytest

from repro.engine.faults import FaultCounters, FaultInjector, FaultSpec
from repro.errors import ProtocolError
from repro.graphs.generators import random_forest
from repro.model import Message, OneRoundProtocol, Referee
from repro.protocols import ForestReconstructionProtocol


def _tagged(bits_per_msg=8, count=20):
    return [(i, Message((i * 37) % (1 << bits_per_msg), bits_per_msg)) for i in range(1, count + 1)]


class _ConstantProtocol(OneRoundProtocol):
    """Sends 8 real bits per node; the global phase ignores the messages,
    so any fault pattern still decodes (the report's bit counts are the
    observable)."""

    name = "constant-8"

    def local(self, n, i, neighborhood):
        return Message(0b10101010, 8)

    def global_(self, n, messages):
        return None


class TestFaultSpec:
    def test_defaults_are_noop(self):
        assert FaultSpec().is_noop

    @pytest.mark.parametrize("field", ["drop", "duplicate", "flip"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5, "high"])
    def test_rejects_bad_probability(self, field, bad):
        with pytest.raises(ProtocolError):
            FaultSpec(**{field: bad})

    def test_dict_roundtrip(self):
        spec = FaultSpec(drop=0.1, duplicate=0.2, flip=0.3, seed=9)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ProtocolError, match="unknown FaultSpec"):
            FaultSpec.from_dict({"drop": 0.1, "corrupt": 0.2})


class TestInjector:
    def test_deterministic_given_seeds(self):
        spec = FaultSpec(drop=0.3, duplicate=0.3, flip=0.3, seed=5)
        out1, c1 = spec.injector(run_seed=7).apply(_tagged())
        out2, c2 = spec.injector(run_seed=7).apply(_tagged())
        assert out1 == out2 and c1 == c2

    def test_run_seed_changes_stream(self):
        spec = FaultSpec(drop=0.5, seed=5)
        out1, _ = spec.injector(run_seed=1).apply(_tagged())
        out2, _ = spec.injector(run_seed=2).apply(_tagged())
        assert out1 != out2

    def test_noop_spec_identity(self):
        tagged = _tagged()
        delivered, counters = FaultSpec().injector(0).apply(tagged)
        assert delivered == tagged
        assert counters.total == 0

    def test_drop_delivers_empty_message(self):
        delivered, counters = FaultSpec(drop=1.0).injector(0).apply(_tagged())
        assert counters.dropped == len(delivered)
        assert all(msg.bits == 0 for _, msg in delivered)
        assert [i for i, _ in delivered] == [i for i, _ in _tagged()]

    def test_flip_changes_exactly_one_bit(self):
        tagged = _tagged()
        delivered, counters = FaultSpec(flip=1.0).injector(3).apply(tagged)
        assert counters.flipped == len(tagged)
        for (_, before), (_, after) in zip(tagged, delivered):
            assert after.bits == before.bits
            assert bin(before.acc ^ after.acc).count("1") == 1

    def test_flip_on_empty_message_is_noop(self):
        delivered, counters = FaultSpec(flip=1.0).injector(0).apply([(1, Message.empty())])
        assert delivered == [(1, Message.empty())]
        assert counters.flipped == 0

    def test_duplicate_without_flip_is_invisible(self):
        tagged = _tagged()
        delivered, counters = FaultSpec(duplicate=1.0).injector(0).apply(tagged)
        assert counters.duplicated == len(tagged)
        assert delivered == tagged  # last arrival identical to the first

    def test_counters_total(self):
        assert FaultCounters(dropped=1, duplicated=2, flipped=3).total == 6


class TestRefereeIntegration:
    def test_drop_measures_delivered_bits(self):
        g = random_forest(40, 4, seed=1)
        report = Referee(faults=FaultSpec(drop=1.0), fault_seed=0).run(_ConstantProtocol(), g)
        assert report.fault_counters is not None
        assert report.fault_counters.dropped == g.n
        assert report.total_message_bits == 0  # delivered bits, not sent bits

    def test_duplicate_counters_flow_through_clean_decode(self):
        g = random_forest(40, 4, seed=1)
        protocol = ForestReconstructionProtocol()
        clean = Referee().run(protocol, g)
        faulty = Referee(faults=FaultSpec(duplicate=1.0), fault_seed=0).run(protocol, g)
        assert faulty.fault_counters is not None
        assert faulty.fault_counters.duplicated == g.n
        assert faulty.output == clean.output == g  # identical copies, decode unaffected
        assert faulty.per_vertex_bits == clean.per_vertex_bits
        assert clean.fault_counters is None

    def test_noop_faultspec_changes_nothing(self):
        g = random_forest(25, 3, seed=2)
        protocol = ForestReconstructionProtocol()
        clean = Referee().run(protocol, g)
        noop = Referee(faults=FaultSpec()).run(protocol, g)
        assert noop.output == clean.output == g
        assert noop.per_vertex_bits == clean.per_vertex_bits
        assert noop.fault_counters is None

    def test_budget_audits_sent_message_not_delivered(self):
        g = random_forest(30, 3, seed=3)
        protocol = ForestReconstructionProtocol()
        sent_max = max(m.bits for m in protocol.message_vector(g))
        # Dropping everything must not rescue an over-budget sender.
        from repro.errors import FrugalityViolation

        with pytest.raises(FrugalityViolation):
            Referee(budget_bits=sent_max - 1, faults=FaultSpec(drop=1.0)).run(protocol, g)

    def test_prebuilt_injector_accepted(self):
        g = random_forest(20, 2, seed=4)
        injector = FaultInjector(FaultSpec(drop=1.0), run_seed=1)
        report = Referee(faults=injector).run(_ConstantProtocol(), g)
        assert report.fault_counters.dropped == g.n
