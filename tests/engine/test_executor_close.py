"""Shutdown hygiene for the pooled executors (the serve daemon's teardown path).

The contract under test: ``close(cancel_pending=True)`` drops queued work
and joins in-flight workers; ``__exit__`` picks the cancelling form
exactly when the block is leaving on an exception; and close is
idempotent and thread-safe (the daemon calls it from a teardown thread
while a worker thread may be mid-``close``).
"""

import threading
import time

import pytest

from repro.engine import SerialExecutor, ThreadPoolExecutor
from repro.engine.executor import make_executor


def test_exceptional_exit_cancels_pending_work():
    started = []
    release = threading.Event()

    def task(i):
        started.append(i)
        release.wait(timeout=10)
        return i

    ex = ThreadPoolExecutor(jobs=1)
    pool = ex._ensure_pool()
    futures = [pool.submit(task, i) for i in range(4)]
    while not started:
        time.sleep(0.001)
    release.set()
    with pytest.raises(RuntimeError):
        with ex:
            raise RuntimeError("mid-campaign crash")
    # the in-flight task completed (workers are joined, never orphaned);
    # at least part of the queued backlog was dropped, not executed
    assert futures[0].done() and not futures[0].cancelled()
    assert any(f.cancelled() for f in futures[1:])


def test_clean_exit_drains_the_backlog():
    ex = ThreadPoolExecutor(jobs=1)
    pool = ex._ensure_pool()
    futures = [pool.submit(lambda i=i: i) for i in range(4)]
    with ex:
        pass
    assert [f.result(timeout=0) for f in futures] == [0, 1, 2, 3]


def test_close_is_idempotent_and_reentrant():
    for kind in ("serial", "thread", "process"):
        ex = make_executor(kind, 1)
        ex.map(abs, [-1])
        ex.close()
        ex.close(cancel_pending=True)  # second close is a no-op
        ex.close()


def test_close_is_thread_safe():
    ex = ThreadPoolExecutor(jobs=1)
    ex.map(abs, [-1])
    errors = []

    def closer():
        try:
            ex.close(cancel_pending=True)
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_serial_executor_close_is_a_noop():
    ex = SerialExecutor()
    with ex:
        assert ex.map(abs, [-2]) == [2]
    ex.close(cancel_pending=True)
    assert ex.map(abs, [-3]) == [3]  # still usable: nothing to release
