"""Seeded fuzz of the GF(2^61 - 1) field axioms and parameter derivation.

The field layer is the innermost loop of every sketch, and the hot-path
work inlines its arithmetic in several places (one-sparse updates, L0
fan-out) — these properties are what make those rewrites safe: any
algebraic drift in ``fadd``/``fmul``/``fpow`` breaks an axiom here long
before it corrupts a campaign digest.

All draws come from a dedicated ``random.Random`` (the repo-wide RNG
discipline); the sweep is deterministic given the seed.
"""

import random

import pytest

from repro.sketching.field import (
    MERSENNE61,
    derive_params,
    derive_params_block,
    fadd,
    fmul,
    fpow,
    fsub,
    splitmix64,
)

TRIALS = 200


@pytest.fixture()
def rng():
    return random.Random(0xF1E1D)


def _elems(rng, count):
    return [rng.randrange(MERSENNE61) for _ in range(count)]


class TestFieldAxioms:
    def test_add_commutative_associative(self, rng):
        for _ in range(TRIALS):
            a, b, c = _elems(rng, 3)
            assert fadd(a, b) == fadd(b, a)
            assert fadd(fadd(a, b), c) == fadd(a, fadd(b, c))

    def test_mul_commutative_associative(self, rng):
        for _ in range(TRIALS):
            a, b, c = _elems(rng, 3)
            assert fmul(a, b) == fmul(b, a)
            assert fmul(fmul(a, b), c) == fmul(a, fmul(b, c))

    def test_distributivity(self, rng):
        for _ in range(TRIALS):
            a, b, c = _elems(rng, 3)
            assert fmul(a, fadd(b, c)) == fadd(fmul(a, b), fmul(a, c))

    def test_identities_and_additive_inverse(self, rng):
        for _ in range(TRIALS):
            (a,) = _elems(rng, 1)
            assert fadd(a, 0) == a % MERSENNE61
            assert fmul(a, 1) == a % MERSENNE61
            assert fadd(a, fsub(0, a)) == 0
            assert fsub(a, a) == 0

    def test_fpow_matches_repeated_fmul(self, rng):
        for _ in range(TRIALS // 4):
            (a,) = _elems(rng, 1)
            exp = rng.randrange(1, 50)
            acc = 1
            for _ in range(exp):
                acc = fmul(acc, a)
            assert fpow(a, exp) == acc
        assert fpow(0, 0) == 1  # pow() convention, pinned

    def test_fermat_little_theorem(self, rng):
        """a^(p-1) = 1 for a != 0 — the field really is a field of order p."""
        for _ in range(20):
            a = rng.randrange(1, MERSENNE61)
            assert fpow(a, MERSENNE61 - 1) == 1

class TestDerivation:
    def test_splitmix64_reference_vectors(self):
        """The standard splitmix64 outputs for counter states 0, 1, 2.

        ``splitmix64(i)`` is the mix of state ``i`` after the golden-ratio
        increment — input 0 must give the canonical first output
        ``0xE220A8397B1DCDAF`` on every platform.
        """
        assert [splitmix64(i) for i in (0, 1, 2)] == [
            0xE220A8397B1DCDAF, 0x910A2DEC89025CC1, 0x975835DE1C9756CE,
        ]

    def test_derive_params_deterministic_and_64_bit(self, rng):
        for _ in range(TRIALS):
            seed = rng.getrandbits(64)
            tags = tuple(rng.getrandbits(16) for _ in range(rng.randrange(4)))
            v = derive_params(seed, *tags)
            assert v == derive_params(seed, *tags)
            assert 0 <= v < 1 << 64

    def test_derive_params_tag_sensitivity(self, rng):
        """Different tag vectors (and tag *order*) give different values."""
        seed = 2026
        assert derive_params(seed, 1, 2) != derive_params(seed, 2, 1)
        seen = {derive_params(seed, t) for t in range(256)}
        assert len(seen) == 256

    def test_derive_params_block_matches_scalar_calls(self, rng):
        for _ in range(TRIALS // 2):
            seed = rng.getrandbits(64)
            tags = tuple(rng.getrandbits(64) for _ in range(rng.randrange(4)))
            count = rng.randrange(0, 6)
            assert derive_params_block(seed, count, *tags) == tuple(
                derive_params(seed, which, *tags) for which in range(1, count + 1)
            )

    def test_derive_params_block_rejects_negative_count(self):
        with pytest.raises(ValueError, match="count"):
            derive_params_block(1, -2)
