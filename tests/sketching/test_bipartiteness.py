"""Tests for one-round sketch bipartiteness (the paper's second open question)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph, connected_components, is_bipartite
from repro.graphs.generators import (
    complete_bipartite,
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    grid_2d,
    path_graph,
    random_bipartite,
    random_tree,
)
from repro.sketching.bipartiteness import (
    SketchBipartitenessProtocol,
    double_cover_components,
)


class TestDoubleCoverReference:
    def test_even_cycle_lifts_to_two_cycles(self):
        g = cycle_graph(6)
        assert double_cover_components(6, g.edges()) == 2

    def test_odd_cycle_lifts_to_one_cycle(self):
        g = cycle_graph(5)
        assert double_cover_components(5, g.edges()) == 1

    def test_identity_cc_dc_vs_bipartite(self):
        for seed in range(10):
            g = erdos_renyi(10, 0.3, seed=seed)
            cc = len(connected_components(g))
            dc = double_cover_components(g.n, g.edges())
            # per-component: bipartite comp -> 2 lifts, odd comp -> 1
            assert (dc == 2 * cc) == is_bipartite(g)


class TestSketchBipartiteness:
    @pytest.mark.parametrize("gen", [
        lambda: complete_bipartite(4, 5),
        lambda: grid_2d(4, 4),
        lambda: cycle_graph(8),
        lambda: path_graph(10),
        lambda: random_tree(12, seed=2),
        lambda: random_bipartite(5, 5, 0.5, seed=3),
    ])
    def test_accepts_bipartite(self, gen):
        g = gen()
        assert SketchBipartitenessProtocol(seed=4).decide(g) is True

    @pytest.mark.parametrize("gen", [
        lambda: cycle_graph(5),
        lambda: cycle_graph(9),
        lambda: LabeledGraph(4, [(1, 2), (2, 3), (1, 3)]),  # triangle + isolate
    ])
    def test_rejects_odd_cycles(self, gen):
        g = gen()
        assert SketchBipartitenessProtocol(seed=4).decide(g) is False

    def test_disconnected_mixed(self):
        # one bipartite component + one odd cycle: not bipartite
        g = disjoint_union(path_graph(4), cycle_graph(5))
        assert SketchBipartitenessProtocol(seed=1).decide(g) is False

    def test_edgeless_and_tiny(self):
        assert SketchBipartitenessProtocol().decide(LabeledGraph(1)) is True
        assert SketchBipartitenessProtocol().decide(LabeledGraph(5)) is True

    def test_report_fields(self):
        g = cycle_graph(6)
        p = SketchBipartitenessProtocol(seed=9)
        report = p.decode_and_solve(g.n, p.message_vector(g))
        assert report.bipartite is True
        assert report.components_g == 1
        assert report.components_double_cover == 2
        assert report.bits_per_node > 0

    def test_accuracy_across_seeds(self):
        g = erdos_renyi(16, 0.15, seed=11)
        truth = is_bipartite(g)
        agree = sum(
            SketchBipartitenessProtocol(seed=s).decide(g) == truth for s in range(12)
        )
        assert agree >= 10


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 14), p=st.floats(0, 0.4), seed=st.integers(0, 300))
def test_sketch_bipartiteness_mostly_correct(n, p, seed):
    """Property: matches ground truth except for rare sketch failures."""
    g = erdos_renyi(n, p, seed=seed)
    votes = [SketchBipartitenessProtocol(seed=s).decide(g) for s in (1, 2, 3)]
    # majority of three independent runs matches the truth
    assert (sum(votes) >= 2) == is_bipartite(g)
