"""Tests for AGM sketch connectivity (one-round and multi-round)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph, is_connected
from repro.graphs.generators import (
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    path_graph,
    random_tree,
    star_graph,
)
from repro.model import MultiRoundReferee, Referee, log2_ceil
from repro.sketching import (
    AGMConnectivityProtocol,
    MultiRoundSketchConnectivity,
    sketch_spanning_forest,
)
from repro.sketching.connectivity import edge_index, edge_pair


class TestEdgeIndexing:
    def test_roundtrip_all_pairs(self):
        n = 9
        seen = set()
        for u in range(1, n + 1):
            for v in range(u + 1, n + 1):
                idx = edge_index(n, u, v)
                assert edge_pair(n, idx) == (u, v)
                seen.add(idx)
        assert seen == set(range(n * (n - 1) // 2))

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            edge_index(5, 3, 3)
        with pytest.raises(ValueError):
            edge_index(5, 0, 2)
        with pytest.raises(ValueError):
            edge_pair(5, 10)


class TestOneRoundConnectivity:
    @pytest.mark.parametrize("gen", [
        lambda: path_graph(16),
        lambda: cycle_graph(15),
        lambda: star_graph(20),
        lambda: random_tree(24, seed=3),
        lambda: erdos_renyi(20, 0.3, seed=1),
    ])
    def test_connected_graphs_accepted(self, gen):
        g = gen()
        if not is_connected(g):
            pytest.skip("generator produced disconnected instance")
        assert AGMConnectivityProtocol(seed=5).decide(g) is True

    def test_disconnected_graphs_rejected(self):
        g = disjoint_union(path_graph(6), cycle_graph(5))
        assert AGMConnectivityProtocol(seed=5).decide(g) is False

    def test_isolated_vertices(self):
        g = LabeledGraph(8, [(1, 2), (2, 3)])
        assert AGMConnectivityProtocol(seed=1).decide(g) is False

    def test_edgeless_and_tiny(self):
        assert AGMConnectivityProtocol().decide(LabeledGraph(1)) is True
        assert AGMConnectivityProtocol().decide(LabeledGraph(3)) is False
        assert AGMConnectivityProtocol().decide(LabeledGraph(2, [(1, 2)])) is True

    def test_report_forest_is_spanning_when_connected(self):
        g = random_tree(18, seed=7)
        report = sketch_spanning_forest(g, seed=2)
        assert report.connected
        # the reported forest's edges are genuine and span
        forest = LabeledGraph(g.n, report.forest_edges)
        assert is_connected(forest)
        for u, v in report.forest_edges:
            assert g.has_edge(u, v)  # no forged edges (fingerprint held)

    def test_no_false_connected_across_seeds(self):
        """One-sided error: a disconnected graph is NEVER called connected."""
        g = disjoint_union(cycle_graph(6), cycle_graph(6))
        for seed in range(20):
            assert AGMConnectivityProtocol(seed=seed).decide(g) is False

    def test_success_rate_across_seeds(self):
        g = erdos_renyi(24, 0.2, seed=9)
        truth = is_connected(g)
        agree = sum(AGMConnectivityProtocol(seed=s).decide(g) == truth for s in range(20))
        assert agree >= 18  # small one-sided error only

    def test_bits_are_polylog(self):
        """O(log³ n) bits per node: ratio to log³ stays bounded as n grows."""
        ratios = []
        for n in (16, 32, 64, 128):
            g = random_tree(n, seed=n)
            p = AGMConnectivityProtocol(seed=1)
            bits = p.max_message_bits(g)
            ratios.append(bits / log2_ceil(n) ** 3)
        # the constant is large (61-bit fingerprints per level) but bounded,
        # and the ratio must not grow with n — that is the O(log³ n) shape
        assert max(ratios) <= 120.0
        assert ratios == sorted(ratios, reverse=True)

    def test_referee_run_report(self):
        g = path_graph(12)
        report = Referee().run(AGMConnectivityProtocol(seed=3), g)
        assert report.output is True
        assert report.max_message_bits > 0


class TestMultiRoundConnectivity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_one_round(self, seed):
        for gen_seed in range(4):
            g = erdos_renyi(14, 0.25, seed=gen_seed)
            one = AGMConnectivityProtocol(seed=seed).decide(g)
            multi = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=seed), g)
            assert multi.output == one

    def test_per_round_message_smaller_than_one_round(self):
        """The whole point: each round's message is one log-factor lighter."""
        g = random_tree(64, seed=4)
        one_round_bits = AGMConnectivityProtocol(seed=1).max_message_bits(g)
        report = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=1), g)
        assert report.max_node_message_bits < one_round_bits
        # ratio ~ number of Borůvka rounds
        assert report.max_node_message_bits * 2 <= one_round_bits

    def test_early_output_when_connected_quickly(self):
        g = star_graph(16)  # one Borůvka phase suffices
        report = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=0), g)
        assert report.output is True
        assert report.rounds_used <= 3

    def test_disconnected(self):
        g = disjoint_union(path_graph(5), path_graph(5))
        report = MultiRoundReferee().run(MultiRoundSketchConnectivity(seed=0), g)
        assert report.output is False

    def test_tiny_graphs(self):
        report = MultiRoundReferee().run(MultiRoundSketchConnectivity(), LabeledGraph(1))
        assert report.output is True


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 20), p=st.floats(0, 0.5), seed=st.integers(0, 500))
def test_sketch_connectivity_one_sided_property(n, p, seed):
    """Property: never claims connected on a disconnected graph; usually right overall."""
    g = erdos_renyi(n, p, seed=seed)
    out = AGMConnectivityProtocol(seed=seed + 1).decide(g)
    if not is_connected(g):
        assert out is False
