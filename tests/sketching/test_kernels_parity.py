"""Seeded parity fuzz sweep: the numpy kernels are bit-identical to pure.

The kernel backend is an *execution* axis — the acceptance contract is
that no digest, packed bit-stream, or counter can distinguish it from the
pure reference.  This battery sweeps randomized ``(seed, level, stream)``
triples through both backends and asserts exact equality, plus the
selection/validation semantics that hold with or without numpy.

Everything under ``TestNumpy*`` skips cleanly on interpreters without
numpy (the optional-dependency policy: ``pure`` is the zero-dependency
default and the only backend CI's no-numpy leg exercises).
"""

import random
import threading

import pytest

from repro.bits.writer import BitWriter
from repro.errors import CodecError, KernelError
from repro.sketching import kernels
from repro.sketching.field import MERSENNE61, derive_params_block, splitmix64
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy not installed"
)


# --------------------------------------------------------------------- #
# backend selection (backend-independent semantics)
# --------------------------------------------------------------------- #


class TestSelection:
    def test_pure_is_the_default(self):
        assert kernels.DEFAULT_KERNELS == "pure"
        assert kernels.active_kernels() == "pure"
        assert kernels.available_kernels()[0] == "pure"

    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            kernels.resolve_kernels("cuda")

    def test_resolve_none_means_active(self):
        assert kernels.resolve_kernels(None) == kernels.active_kernels()

    def test_use_kernels_scopes_and_restores(self):
        backend = "numpy" if kernels.numpy_available() else "pure"
        with kernels.use_kernels(backend) as active:
            assert active == backend
            assert kernels.active_kernels() == backend
        assert kernels.active_kernels() == "pure"

    def test_use_kernels_is_thread_local(self):
        backend = "numpy" if kernels.numpy_available() else "pure"
        seen = []
        barrier = threading.Barrier(2)

        def other():
            barrier.wait()
            seen.append(kernels.active_kernels())

        with kernels.use_kernels(backend):
            t = threading.Thread(target=other)
            t.start()
            barrier.wait()
            t.join()
        assert seen == ["pure"]  # a fresh thread never inherits the scope

    @pytest.mark.skipif(kernels.numpy_available(), reason="needs numpy absent")
    def test_numpy_request_fails_loudly_without_numpy(self):
        with pytest.raises(KernelError, match="numpy is not installed"):
            kernels.resolve_kernels("numpy")


# --------------------------------------------------------------------- #
# field arithmetic
# --------------------------------------------------------------------- #


@requires_numpy
class TestNumpyFieldParity:
    def test_mulmod_fuzz_matches_python_ints(self):
        import numpy as np

        rng = random.Random(0xF1E1D)
        a = [rng.randrange(MERSENNE61) for _ in range(2000)]
        b = [rng.randrange(MERSENNE61) for _ in range(2000)]
        got = kernels.mulmod61(
            np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64)
        )
        assert got.tolist() == [(x * y) % MERSENNE61 for x, y in zip(a, b)]

    def test_powmod_fuzz_matches_pow(self):
        import numpy as np

        rng = random.Random(0xB0B)
        base = rng.randrange(2, MERSENNE61)
        exps = [rng.randrange(1 << rng.randrange(1, 61)) for _ in range(500)]
        got = kernels.powmod61(np.uint64(base), np.array(exps, dtype=np.uint64))
        assert got.tolist() == [pow(base, e, MERSENNE61) for e in exps]

    def test_dense_powmod_matches_pow_including_fallback(self):
        import numpy as np

        rng = random.Random(3)
        base = rng.randrange(2, MERSENNE61)
        small = np.array([rng.randrange(1 << 20) for _ in range(300)], dtype=np.uint64)
        huge = np.array([(1 << 60) - 7, 5, 1 << 59], dtype=np.uint64)
        for exps in (small, huge, np.array([0], dtype=np.uint64)):
            got = kernels._powmod61_dense(base, exps)
            assert got.tolist() == [pow(base, int(e), MERSENNE61) for e in exps]

    def test_splitmix_vector_matches_scalar(self):
        import numpy as np

        xs = [random.Random(9).randrange(1 << 64) for _ in range(256)]
        got = kernels.splitmix64_np(np.array(xs, dtype=np.uint64))
        assert got.tolist() == [splitmix64(x) for x in xs]

    def test_derive_block_batch_matches_scalar_blocks(self):
        rng = random.Random(0xDE51)
        tags = [(rng.randrange(1 << 64), rng.randrange(1 << 16)) for _ in range(200)]
        got = kernels.derive_params_block_batch(0xBEC4E12011, 4, tags)
        assert got == [derive_params_block(0xBEC4E12011, 4, *row) for row in tags]

    def test_derive_block_batch_validates(self):
        with pytest.raises(ValueError, match="count"):
            kernels.derive_params_block_batch(1, -1, [(1,)])
        with pytest.raises(ValueError, match="same length"):
            kernels.derive_params_block_batch(1, 2, [(1,), (1, 2)])
        assert kernels.derive_params_block_batch(1, 2, []) == []


# --------------------------------------------------------------------- #
# L0 sampler: (seed, level, stream) sweep
# --------------------------------------------------------------------- #


@requires_numpy
class TestNumpyL0Parity:
    def test_seeded_sweep_counter_identical(self):
        rng = random.Random(0x5EED)
        for trial in range(40):
            m = rng.randrange(1, 5000)
            seed = rng.randrange(1 << 64)
            level_tag = rng.randrange(1 << 20)
            params = L0SamplerParams.derive(m, seed, level_tag)
            stream = [
                (rng.randrange(m), rng.randrange(-20, 21))
                for _ in range(rng.randrange(0, 500))
            ]
            pure, vec = L0Sampler(params), L0Sampler(params)
            pure.update_many(stream)
            with kernels.use_kernels("numpy"):
                vec.update_many(stream)
            assert pure.counters() == vec.counters(), (trial, m, seed)

    def test_out_of_range_index_applies_prefix_then_raises_like_pure(self):
        params = L0SamplerParams.derive(32, 1)
        stream = [(3, 1), (5, -1), (32, 1), (7, 1)]
        pure, vec = L0Sampler(params), L0Sampler(params)
        with pytest.raises(ValueError, match="outside"):
            pure.update_many(stream)
        with kernels.use_kernels("numpy"):
            with pytest.raises(ValueError, match="outside"):
                vec.update_many(stream)
        assert pure.counters() == vec.counters()  # valid prefix applied

    def test_huge_delta_falls_back_and_stays_identical(self):
        params = L0SamplerParams.derive(64, 2)
        stream = [(1, 1 << 80), (2, -(1 << 90)), (3, 5)]
        pure, vec = L0Sampler(params), L0Sampler(params)
        pure.update_many(stream)
        with kernels.use_kernels("numpy"):
            vec.update_many(stream)
        assert pure.counters() == vec.counters()

    def test_sample_results_agree_after_batched_updates(self):
        rng = random.Random(77)
        params = L0SamplerParams.derive(400, 13, 2)
        stream = [(rng.randrange(400), rng.choice((-1, 1))) for _ in range(300)]
        pure, vec = L0Sampler(params), L0Sampler(params)
        pure.update_many(stream)
        with kernels.use_kernels("numpy"):
            vec.update_many(stream)
        def outcome(sampler):
            from repro.errors import SketchFailure

            try:
                return ("ok", sampler.sample())
            except SketchFailure:
                return ("sketch-failure", None)

        assert outcome(pure) == outcome(vec)


# --------------------------------------------------------------------- #
# bit packing: packed streams byte-identical to the pure writer
# --------------------------------------------------------------------- #


@requires_numpy
class TestNumpyPackParity:
    WIDTHS = (0, 1, 3, 7, 8, 12, 24, 31, 32, 33, 61, 63)

    def test_seeded_stream_sweep_byte_identical(self):
        import numpy as np

        rng = random.Random(0xBEEF)
        for trial in range(120):
            fields = []
            for _ in range(rng.randrange(0, 200)):
                width = rng.choice(self.WIDTHS)
                fields.append((rng.getrandbits(width) if width else 0, width))
            ref = BitWriter()
            ref.write_many(fields)
            want = (ref.to_bytes(), len(ref))
            assert kernels.pack_fields(fields) == want, trial
            if fields:
                values = np.array([f[0] for f in fields], dtype=np.int64)
                widths = np.array([f[1] for f in fields], dtype=np.int64)
                assert kernels.pack_arrays(values, widths) == want, trial

    def test_write_fields_splices_into_nonempty_writer(self):
        rng = random.Random(21)
        fields = [(rng.getrandbits(24), 24) for _ in range(100)]
        pure, vec = BitWriter(), BitWriter()
        pure.write_bits(0b1011, 4)
        vec.write_bits(0b1011, 4)
        pure.write_many(fields)
        with kernels.use_kernels("numpy"):
            kernels.write_fields(vec, fields)
        assert pure.to_bytes() == vec.to_bytes() and len(pure) == len(vec)

    def test_validation_errors_match_pure_writer_first_failure(self):
        bad_batches = [
            [(1, 1), (-1, 3)],
            [(1, 1), (9, 2)],
            [(1, 1), (2, -2)],
        ]
        for batch in bad_batches:
            try:
                BitWriter().write_many(batch)
            except CodecError as exc:
                pure_msg = str(exc)
            with pytest.raises(CodecError) as info:
                kernels.pack_fields(batch)
            assert str(info.value) == pure_msg

    def test_wide_fields_fall_back_to_pure_writer(self):
        fields = [(1 << 70, 80), (5, 3)]  # width > 63: outside the lanes
        assert kernels.pack_fields(fields) is None
        pure, vec = BitWriter(), BitWriter()
        pure.write_many(fields)
        with kernels.use_kernels("numpy"):
            kernels.write_fields(vec, fields)  # falls back internally
        assert pure.to_bytes() == vec.to_bytes() and len(pure) == len(vec)

    def test_empty_batch(self):
        assert kernels.pack_fields([]) == (b"", 0)
        writer = BitWriter()
        with kernels.use_kernels("numpy"):
            kernels.write_fields(writer, [])
        assert len(writer) == 0


# --------------------------------------------------------------------- #
# write_packed (the splice primitive both backends share)
# --------------------------------------------------------------------- #


class TestWritePacked:
    def test_splices_exactly_nbits(self):
        writer = BitWriter()
        writer.write_bits(0b11, 2)
        writer.write_packed(b"\xa5\x80", 9)  # 1010 0101 1
        check = BitWriter()
        check.write_bits(0b11, 2)
        for bit in "101001011":
            check.write_bits(int(bit), 1)
        assert writer.to_bytes() == check.to_bytes() and len(writer) == len(check)

    def test_validates_nbits(self):
        writer = BitWriter()
        with pytest.raises(CodecError):
            writer.write_packed(b"\xff", -1)
        with pytest.raises(CodecError):
            writer.write_packed(b"\xff", 9)
        writer.write_packed(b"", 0)
        assert len(writer) == 0
