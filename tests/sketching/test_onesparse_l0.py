"""Tests for the one-sparse sketch and L0 sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchFailure
from repro.sketching import L0Sampler, L0SamplerParams, OneSparseSketch
from repro.sketching.field import MERSENNE61, derive_params, fadd, fmul, fpow, splitmix64
from repro.sketching.onesparse import RecoveryStatus


class TestField:
    def test_mersenne_value(self):
        assert MERSENNE61 == 2305843009213693951
        # actually prime: spot-check small factors
        for q in (3, 5, 7, 11, 13, 31, 61, 127):
            assert MERSENNE61 % q != 0

    def test_arithmetic(self):
        assert fadd(MERSENNE61 - 1, 2) == 1
        assert fmul(2, MERSENNE61 - 1) == MERSENNE61 - 2
        assert fpow(3, MERSENNE61 - 1) == 1  # Fermat

    def test_splitmix_deterministic(self):
        assert splitmix64(42) == splitmix64(42)
        assert splitmix64(42) != splitmix64(43)

    def test_derive_params_tag_sensitivity(self):
        assert derive_params(1, 2, 3) != derive_params(1, 3, 2)
        assert derive_params(1, 2, 3) == derive_params(1, 2, 3)


class TestOneSparse:
    def test_zero_vector(self):
        s = OneSparseSketch(100, z=12345)
        assert s.recover().status is RecoveryStatus.ZERO

    def test_one_sparse_positive(self):
        s = OneSparseSketch(100, z=999)
        s.update(37, 1)
        r = s.recover()
        assert r.status is RecoveryStatus.ONE_SPARSE
        assert (r.index, r.weight) == (37, 1)

    def test_one_sparse_negative_weight(self):
        s = OneSparseSketch(100, z=999)
        s.update(5, -3)
        r = s.recover()
        assert r.status is RecoveryStatus.ONE_SPARSE
        assert (r.index, r.weight) == (5, -3)

    def test_dense_detected(self):
        s = OneSparseSketch(100, z=7777)
        s.update(3, 1)
        s.update(50, 1)
        assert s.recover().status is RecoveryStatus.DENSE

    def test_cancelling_pair_with_c0_zero_detected(self):
        """The treacherous case: +1 and -1 at different slots (c0 = 0)."""
        s = OneSparseSketch(100, z=31337)
        s.update(10, 1)
        s.update(20, -1)
        assert s.recover().status is RecoveryStatus.DENSE

    def test_update_then_cancel_returns_zero(self):
        s = OneSparseSketch(50, z=4242)
        s.update(7, 2)
        s.update(7, -2)
        assert s.recover().status is RecoveryStatus.ZERO

    def test_linearity(self):
        a = OneSparseSketch(64, z=5555)
        b = OneSparseSketch(64, z=5555)
        a.update(9, 1)
        a.update(13, 1)
        b.update(13, -1)
        merged = a.merged(b)
        r = merged.recover()
        assert r.status is RecoveryStatus.ONE_SPARSE and r.index == 9

    def test_merge_parameter_mismatch(self):
        with pytest.raises(ValueError):
            OneSparseSketch(10, z=1).merged(OneSparseSketch(10, z=2))

    def test_bad_index(self):
        with pytest.raises(ValueError):
            OneSparseSketch(10, z=5).update(10, 1)

    def test_counters_roundtrip(self):
        s = OneSparseSketch(30, z=888)
        s.update(11, -4)
        s2 = OneSparseSketch.from_counters(30, 888, *s.counters())
        assert s2.recover() == s.recover()

    @given(idx=st.integers(0, 499), weight=st.integers(-8, 8).filter(bool), z=st.integers(1, MERSENNE61 - 1))
    def test_one_sparse_always_recovered(self, idx, weight, z):
        """Property: a genuinely one-sparse vector is always recovered exactly."""
        s = OneSparseSketch(500, z=z)
        s.update(idx, weight)
        r = s.recover()
        assert r.status is RecoveryStatus.ONE_SPARSE
        assert (r.index, r.weight) == (idx, weight)


class TestL0Sampler:
    def _params(self, m, tag=0):
        return L0SamplerParams.derive(m, seed=99, *(tag,)) if False else L0SamplerParams.derive(m, 99, tag)

    def test_zero_vector_returns_none(self):
        s = L0Sampler(self._params(64))
        assert s.sample() is None

    def test_single_coordinate(self):
        s = L0Sampler(self._params(64))
        s.update(17, 1)
        assert s.sample() == (17, 1)

    @pytest.mark.parametrize("tag", range(8))
    def test_samples_valid_coordinate_from_sparse_vectors(self, tag):
        s = L0Sampler(L0SamplerParams.derive(256, 7, tag))
        support = {3, 99, 200, 255}
        for idx in support:
            s.update(idx, 1)
        try:
            hit = s.sample()
        except SketchFailure:
            pytest.skip("this instance failed; independence handles it at protocol level")
        assert hit is not None and hit[0] in support and hit[1] == 1

    def test_dense_vector_usually_recoverable(self):
        """Over many independent instances, the failure rate is small."""
        m = 300
        support = set(range(0, 300, 7))
        ok = 0
        trials = 40
        for tag in range(trials):
            s = L0Sampler(L0SamplerParams.derive(m, 11, tag))
            for idx in support:
                s.update(idx, 1)
            try:
                hit = s.sample()
            except SketchFailure:
                continue
            assert hit is not None and hit[0] in support
            ok += 1
        assert ok >= trials * 0.6  # constant success probability per instance

    def test_linearity_cancels_internal(self):
        """The AGM cancellation pattern: merged sketches drop shared ±1 pairs."""
        params = self._params(128, tag=5)
        a = L0Sampler(params)
        b = L0Sampler(params)
        a.update(10, 1)   # internal edge, + side
        b.update(10, -1)  # internal edge, - side
        a.update(77, 1)   # boundary edge
        merged = a.merged(b)
        assert merged.sample() == (77, 1)

    def test_merge_mismatch(self):
        a = L0Sampler(self._params(64, tag=1))
        b = L0Sampler(self._params(64, tag=2))
        with pytest.raises(ValueError):
            a.merged(b)

    def test_counters_roundtrip(self):
        params = self._params(64, tag=3)
        s = L0Sampler(params)
        s.update(5, 1)
        s.update(60, -1)
        s2 = L0Sampler.from_counters(params, s.counters())
        assert [x.counters() for x in s2.sketches] == [x.counters() for x in s.sketches]

    def test_from_counters_wrong_shape(self):
        params = self._params(64, tag=4)
        with pytest.raises(ValueError):
            L0Sampler.from_counters(params, [(0, 0, 0)])


class TestDeriveMemoization:
    """The derive cache is bounded and invisible: same (m, seed, tags) in,
    same params out, whatever the cache has seen, cleared, or evicted."""

    def test_cache_is_bounded(self):
        from repro.sketching.l0sampler import _derive_cached

        info = _derive_cached.cache_info()
        assert info.maxsize == 1 << 16  # bounded — never grows without limit

    def test_digest_contract_across_cache_clear(self):
        from repro.sketching.l0sampler import _derive_cached

        before = [L0SamplerParams.derive(m, 0xBEC4E12011, t)
                  for m in (16, 300, 4096) for t in (0, 1, 7)]
        _derive_cached.cache_clear()
        after = [L0SamplerParams.derive(m, 0xBEC4E12011, t)
                 for m in (16, 300, 4096) for t in (0, 1, 7)]
        assert before == after  # recomputed values identical to cached ones

    def test_eviction_cannot_change_values(self):
        """Fill a tiny clone of the cache far past its bound: late lookups
        of evicted keys still return value-identical params."""
        from functools import lru_cache

        from repro.sketching.l0sampler import _derive_cached

        tiny = lru_cache(maxsize=8)(_derive_cached.__wrapped__)
        keys = [(16 + i, 42, (i,)) for i in range(64)]
        first = [tiny(*k) for k in keys]
        # every early key has been evicted by now (maxsize 8 << 64 keys)
        assert tiny.cache_info().currsize == 8
        second = [tiny(*k) for k in keys]
        assert first == second
        assert first == [_derive_cached.__wrapped__(*k) for k in keys]

    def test_cache_returns_same_object_uncached_equal_value(self):
        a = L0SamplerParams.derive(128, 9, 5)
        b = L0SamplerParams.derive(128, 9, 5)
        assert a is b  # memoized hit
        from repro.sketching.l0sampler import _derive_cached

        assert a == _derive_cached.__wrapped__(128, 9, (5,))  # equal by value
