"""Tests for the one-round degeneracy estimation protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import LabeledGraph, degeneracy
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    k_tree,
    random_tree,
    star_graph,
)
from repro.protocols.estimation import DegeneracyEstimationProtocol


class TestEstimation:
    def test_trivial_graphs(self):
        assert DegeneracyEstimationProtocol(3).run(LabeledGraph(0)) == 0
        assert DegeneracyEstimationProtocol(3).run(LabeledGraph(5)) == 0

    def test_tree_is_1(self):
        assert DegeneracyEstimationProtocol(4).run(random_tree(15, seed=1)) == 1

    def test_cycle_is_2(self):
        assert DegeneracyEstimationProtocol(4).run(cycle_graph(9)) == 2

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_tree_exact(self, k):
        g = k_tree(k + 8, k, seed=k)
        assert DegeneracyEstimationProtocol(4).run(g) == k

    def test_above_bound_reported_as_kmax_plus_one(self):
        g = complete_graph(8)  # degeneracy 7
        assert DegeneracyEstimationProtocol(3).run(g) == 4

    def test_exact_at_bound(self):
        g = k_tree(10, 3, seed=2)
        assert DegeneracyEstimationProtocol(3).run(g) == 3

    def test_star_is_1_despite_hub(self):
        assert DegeneracyEstimationProtocol(2).run(star_graph(40)) == 1

    def test_k_max_validation(self):
        with pytest.raises(GraphError):
            DegeneracyEstimationProtocol(0)

    def test_message_same_as_reconstruction_protocol(self):
        """Estimation costs nothing extra: its message IS Algorithm 3's."""
        from repro.protocols import DegeneracyReconstructionProtocol

        est = DegeneracyEstimationProtocol(3)
        rec = DegeneracyReconstructionProtocol(3)
        nbhd = frozenset({2, 7})
        assert est.local(10, 1, nbhd) == rec.local(10, 1, nbhd)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 16), p=st.floats(0, 0.8), seed=st.integers(0, 999))
def test_estimation_matches_ground_truth(n, p, seed):
    """Property: output == min(degeneracy, k_max + 1) on random graphs."""
    g = erdos_renyi(n, p, seed=seed)
    k_max = 4
    expected = min(degeneracy(g), k_max + 1)
    assert DegeneracyEstimationProtocol(k_max).run(g) == expected
