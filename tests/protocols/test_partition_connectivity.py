"""Tests for the conclusion's k-partition connectivity coalition protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import LabeledGraph, is_connected
from repro.graphs.generators import (
    cycle_graph,
    disjoint_union,
    erdos_renyi,
    path_graph,
    random_tree,
    star_graph,
)
from repro.model import log2_ceil
from repro.protocols import PartitionConnectivityProtocol
from repro.protocols.partition_connectivity import parts_of


class TestPartsOf:
    def test_balanced_split(self):
        parts = parts_of(10, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert [list(p) for p in parts] == [[1, 2, 3, 4], [5, 6, 7], [8, 9, 10]]

    def test_k1(self):
        assert parts_of(5, 1) == [range(1, 6)]

    def test_rejects_bad_k(self):
        with pytest.raises(GraphError):
            parts_of(5, 0)
        with pytest.raises(GraphError):
            parts_of(3, 5)


class TestPartForest:
    def test_forest_spans_incident_subgraph(self):
        g = star_graph(8)
        p = PartitionConnectivityProtocol(2)
        part = parts_of(8, 2)[0]  # contains the centre
        forest = p.part_forest(g, part)
        assert len(forest) == 7  # the whole star is one tree

    def test_forest_acyclic(self):
        g = cycle_graph(8)
        p = PartitionConnectivityProtocol(4)
        for part in parts_of(8, 4):
            forest = p.part_forest(g, part)
            h = LabeledGraph(8, forest)
            # acyclic: edges <= vertices involved - components > trivially bounded
            assert len(forest) < 8


class TestConnectivityDecision:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_connected_inputs(self, k):
        for g in (path_graph(12), cycle_graph(12), random_tree(12, seed=k), star_graph(12)):
            assert PartitionConnectivityProtocol(k).run(g).connected is True

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_disconnected_inputs(self, k):
        g = disjoint_union(path_graph(5), cycle_graph(4), star_graph(3))
        assert PartitionConnectivityProtocol(k).run(g).connected is False

    def test_isolated_vertices(self):
        g = LabeledGraph(6, [(1, 2)])
        assert PartitionConnectivityProtocol(2).run(g).connected is False

    def test_edgeless(self):
        assert PartitionConnectivityProtocol(2).run(LabeledGraph(4)).connected is False
        assert PartitionConnectivityProtocol(1).run(LabeledGraph(1)).connected is True

    def test_empty_graph(self):
        assert PartitionConnectivityProtocol(3).run(LabeledGraph(0)).connected is True


class TestBudgetClaim:
    """The paper's claim: O(k log n) bits per node."""

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_bits_per_node_scale(self, k):
        n = 256
        g = erdos_renyi(n, 0.05, seed=k)
        report = PartitionConnectivityProtocol(k).run(g)
        # forest <= n-1 edges * 2w bits over n/k members + header
        bound = (2 * (n - 1) * (log2_ceil(n) + 1)) / (n // k) + 4 * log2_ceil(n) + 8
        assert report.max_bits_per_node <= bound
        assert report.bits_per_node_per_log <= 4.0

    def test_report_fields(self):
        g = path_graph(20)
        report = PartitionConnectivityProtocol(4).run(g)
        assert report.n == 20 and report.k_parts == 4
        assert report.total_bits > 0 and report.forest_edges >= 19


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 30), p=st.floats(0, 0.5), seed=st.integers(0, 999), k=st.integers(1, 6))
def test_partition_connectivity_matches_ground_truth(n, p, seed, k):
    """Property: the coalition protocol always agrees with BFS connectivity."""
    k = min(k, n)
    g = erdos_renyi(n, p, seed=seed)
    assert PartitionConnectivityProtocol(k).run(g).connected == is_connected(g)
