"""Tests for Algorithm 3's encoding and the Theorem 4 / Lemma 3 decoders."""

import math
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, GraphError
from repro.model import Message
from repro.protocols.powersum import (
    PowerSumLookupTable,
    compute_power_sums,
    decode_neighborhood_newton,
    decode_powersum_message,
    encode_powersum_message,
    integer_roots_of_monic,
    newton_identities,
    powersum_message_bits,
)


class TestComputePowerSums:
    def test_empty_neighborhood(self):
        assert compute_power_sums(frozenset(), 3) == (0, 0, 0)

    def test_singleton(self):
        assert compute_power_sums({5}, 3) == (5, 25, 125)

    def test_pair(self):
        assert compute_power_sums({2, 3}, 2) == (5, 13)

    def test_rejects_k0(self):
        with pytest.raises(GraphError):
            compute_power_sums({1}, 0)

    def test_matches_vandermonde_matrix_product(self):
        """b = A(k,n) · x̄ — check against an explicit matrix multiply."""
        np = pytest.importorskip("numpy", exc_type=ImportError)

        n, k = 12, 3
        nbhd = frozenset({2, 5, 11})
        a = np.array([[i**p for i in range(1, n + 1)] for p in range(1, k + 1)], dtype=object)
        x = np.array([1 if i in nbhd else 0 for i in range(1, n + 1)], dtype=object)
        assert tuple(a @ x) == compute_power_sums(nbhd, k)


class TestWrightUniqueness:
    """Theorem 4 (Wright): power sums p = 1..k determine <= k-subsets uniquely."""

    @pytest.mark.parametrize("n,k", [(8, 1), (8, 2), (8, 3), (12, 2), (6, 4)])
    def test_injective_on_small_domains(self, n, k):
        seen = {}
        for d in range(k + 1):
            for subset in combinations(range(1, n + 1), d):
                key = compute_power_sums(frozenset(subset), k)
                assert key not in seen, f"collision: {subset} vs {seen[key]}"
                seen[key] = subset

    def test_not_injective_without_enough_powers(self):
        """Sanity: one power sum alone cannot separate {1,4} from {2,3}."""
        assert compute_power_sums({1, 4}, 1) == compute_power_sums({2, 3}, 1)
        assert compute_power_sums({1, 4}, 2) != compute_power_sums({2, 3}, 2)


class TestNewtonIdentities:
    def test_known_case(self):
        # multiset {2, 3}: p1=5, p2=13 -> e1=5, e2=6
        assert newton_identities([5, 13]) == [5, 6]

    def test_three_values(self):
        # {1, 2, 4}: p=(7, 21, 73); e=(7, 14, 8)
        assert newton_identities([7, 21, 73]) == [7, 14, 8]

    def test_inconsistent_sums_raise(self):
        # p1=1, p2=2 -> e2 = (e1*p1 - p2)/2 = -1/2: not integral
        with pytest.raises(DecodeError):
            newton_identities([1, 2])

    def test_empty(self):
        assert newton_identities([]) == []


class TestIntegerRoots:
    def test_finds_roots(self):
        # (x-2)(x-5)(x-7): e = (14, 59, 70)
        assert integer_roots_of_monic([14, 59, 70], 10) == [2, 5, 7]

    def test_missing_root_raises(self):
        # (x-2)(x-12) but n = 10: root 12 out of range
        with pytest.raises(DecodeError):
            integer_roots_of_monic([14, 24], 10)

    def test_degree_zero(self):
        assert integer_roots_of_monic([], 5) == []


class TestNewtonDecode:
    @settings(max_examples=60)
    @given(data=st.data(), n=st.integers(2, 40), k=st.integers(1, 5))
    def test_roundtrip_random_subsets(self, data, n, k):
        d = data.draw(st.integers(0, min(k, n)))
        subset = frozenset(data.draw(st.permutations(range(1, n + 1)))[:d])
        sums = compute_power_sums(subset, k)
        assert decode_neighborhood_newton(len(subset), sums, n) == subset

    def test_degree_above_k_rejected(self):
        sums = compute_power_sums({1, 2, 3}, 2)
        with pytest.raises(DecodeError):
            decode_neighborhood_newton(3, sums, 5)

    def test_zero_degree(self):
        assert decode_neighborhood_newton(0, (0, 0), 5) == frozenset()


class TestMessageCodec:
    @pytest.mark.parametrize("n,k", [(10, 1), (10, 3), (100, 2), (1000, 4)])
    def test_encode_decode_roundtrip(self, n, k):
        nbhd = frozenset(range(2, 2 + min(k, n - 1)))
        msg = encode_powersum_message(n, k, 1, nbhd)
        rec = decode_powersum_message(n, k, msg)
        assert rec.vertex == 1
        assert rec.degree == len(nbhd)
        assert rec.power_sums == compute_power_sums(nbhd, k)
        assert rec.k == k

    @pytest.mark.parametrize("n,k", [(16, 1), (64, 2), (256, 3), (1024, 5)])
    def test_message_size_formula_exact(self, n, k):
        """Lemma 2 made exact: the serialized size matches the closed form."""
        # worst-case neighbourhood: the k largest IDs
        nbhd = frozenset(range(n - k + 1, n + 1))
        msg = encode_powersum_message(n, k, 1, nbhd)
        assert msg.bits == powersum_message_bits(n, k)

    def test_message_size_is_o_k2_log_n(self):
        """Lemma 2's shape: bits / (k² log n) bounded by a small constant."""
        for n in (64, 1024, 65536):
            for k in (1, 2, 4, 8):
                ratio = powersum_message_bits(n, k) / (k * k * math.log2(n))
                assert ratio <= 5.5  # worst at k=1: (2 + k(k+3)/2) = 4 log-units

    def test_malformed_message_raises(self):
        with pytest.raises(DecodeError):
            decode_powersum_message(10, 2, Message(0, 3))

    def test_bad_vertex_id_raises(self):
        msg = encode_powersum_message(10, 1, 1, frozenset())
        # patch the ID field (first 4 bits) to 11 > n=10... encode directly
        from repro.bits import BitWriter

        w = BitWriter()
        w.write_bits(11, 4)
        w.write_bits(0, 4)
        w.write_bits(0, 8)
        with pytest.raises(DecodeError, match="vertex ID"):
            decode_powersum_message(10, 1, Message.from_writer(w))

    def test_bad_degree_raises(self):
        from repro.bits import BitWriter

        w = BitWriter()
        w.write_bits(1, 4)
        w.write_bits(15, 4)  # degree 15 > n-1 = 9
        w.write_bits(0, 8)
        with pytest.raises(DecodeError, match="degree"):
            decode_powersum_message(10, 1, Message.from_writer(w))


class TestLookupTable:
    def test_size(self):
        table = PowerSumLookupTable(8, 2)
        assert len(table) == 1 + 8 + 28

    def test_lookup_roundtrip(self):
        table = PowerSumLookupTable(10, 3)
        for subset in [frozenset(), frozenset({4}), frozenset({1, 9}), frozenset({2, 5, 10})]:
            assert table.lookup(compute_power_sums(subset, 3)) == subset

    def test_lookup_miss_raises(self):
        table = PowerSumLookupTable(6, 2)
        with pytest.raises(DecodeError):
            table.lookup((999, 999))

    def test_guard_rejects_huge(self):
        with pytest.raises(GraphError):
            PowerSumLookupTable(10_000, 4, max_entries=1000)

    def test_lookup_partial_matches_newton(self):
        table = PowerSumLookupTable(12, 3)
        subset = frozenset({3, 7})
        sums = compute_power_sums(subset, 3)
        assert table.lookup_partial(2, sums) == decode_neighborhood_newton(2, sums, 12) == subset

    def test_rejects_k0(self):
        with pytest.raises(GraphError):
            PowerSumLookupTable(5, 0)
