"""Tests for Theorem 5: exact reconstruction of degeneracy-≤k graphs, and recognition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, GraphError, RecognitionFailure
from repro.graphs import LabeledGraph, degeneracy
from repro.graphs.families import petersen
from repro.graphs.generators import (
    apollonian,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    fat_tree,
    grid_2d,
    hypercube,
    k_tree,
    partial_k_tree,
    path_graph,
    random_forest,
    random_k_degenerate,
    random_planar,
    random_tree,
    star_graph,
)
from repro.model import FrugalityAuditor, Referee
from repro.protocols import (
    DegeneracyReconstructionProtocol,
    DegeneracyRecognitionProtocol,
)
from repro.protocols.degeneracy_reconstruction import prune_decode


class TestReconstructionExactness:
    """The headline claim: the referee rebuilds the graph exactly."""

    @pytest.mark.parametrize("gen,k", [
        (lambda: random_tree(30, seed=1), 1),
        (lambda: random_forest(25, 5, seed=2), 1),
        (lambda: star_graph(40), 1),
        (lambda: cycle_graph(17), 2),
        (lambda: grid_2d(5, 6), 2),
        (lambda: apollonian(30, seed=3), 3),
        (lambda: random_planar(40, seed=4), 5),
        (lambda: k_tree(20, 3, seed=5), 3),
        (lambda: partial_k_tree(25, 4, seed=6), 4),
        (lambda: petersen(), 3),
        (lambda: hypercube(4), 4),
        (lambda: fat_tree(4), 4),
    ])
    def test_reconstructs_exactly(self, gen, k):
        g = gen()
        assert degeneracy(g) <= k  # family sanity
        protocol = DegeneracyReconstructionProtocol(k)
        assert protocol.reconstruct(g) == g

    def test_star_shows_unbounded_degree_is_fine(self):
        """Degeneracy 1 but max degree n-1: footnote-1 baselines fail here, this works."""
        g = star_graph(200)
        assert DegeneracyReconstructionProtocol(1).reconstruct(g) == g

    def test_k_larger_than_needed_still_works(self):
        g = random_tree(15, seed=8)
        assert DegeneracyReconstructionProtocol(4).reconstruct(g) == g

    def test_empty_and_tiny_graphs(self):
        assert DegeneracyReconstructionProtocol(2).reconstruct(LabeledGraph(0)) == LabeledGraph(0)
        assert DegeneracyReconstructionProtocol(2).reconstruct(LabeledGraph(1)) == LabeledGraph(1)
        g2 = LabeledGraph(2, [(1, 2)])
        assert DegeneracyReconstructionProtocol(1).reconstruct(g2) == g2

    def test_table_decoder_matches_newton(self):
        g = erdos_renyi(10, 0.3, seed=7)
        k = max(1, degeneracy(g))
        newton = DegeneracyReconstructionProtocol(k, decoder="newton")
        table = DegeneracyReconstructionProtocol(k, decoder="table")
        assert newton.reconstruct(g) == table.reconstruct(g) == g

    def test_table_cached_across_runs(self):
        p = DegeneracyReconstructionProtocol(2, decoder="table")
        g = cycle_graph(9)
        p.reconstruct(g)
        t1 = p._tables[9]
        p.reconstruct(g)
        assert p._tables[9] is t1

    def test_bad_decoder_name(self):
        with pytest.raises(GraphError):
            DegeneracyReconstructionProtocol(2, decoder="magic")

    def test_k0_rejected(self):
        with pytest.raises(GraphError):
            DegeneracyReconstructionProtocol(0)


class TestRecognition:
    """Section III's closing remark: same messages also recognize the class."""

    def test_accepts_within_bound(self):
        assert DegeneracyRecognitionProtocol(2).decide(cycle_graph(10)) is True

    def test_rejects_above_bound(self):
        # K5 has degeneracy 4
        assert DegeneracyRecognitionProtocol(3).decide(complete_graph(5)) is False

    def test_forest_recognizer_vs_cycle(self):
        assert DegeneracyRecognitionProtocol(1).decide(random_tree(12, seed=3)) is True
        assert DegeneracyRecognitionProtocol(1).decide(cycle_graph(12)) is False

    @settings(max_examples=40)
    @given(n=st.integers(2, 16), p=st.floats(0, 0.8), seed=st.integers(0, 999), k=st.integers(1, 4))
    def test_matches_ground_truth(self, n, p, seed, k):
        g = erdos_renyi(n, p, seed=seed)
        assert DegeneracyRecognitionProtocol(k).decide(g) == (degeneracy(g) <= k)

    def test_recognition_failure_carries_witness(self):
        g = complete_graph(6)
        protocol = DegeneracyReconstructionProtocol(2)
        with pytest.raises(RecognitionFailure) as exc:
            protocol.reconstruct(g)
        assert exc.value.stuck_vertices == frozenset(range(1, 7))


class TestFrugality:
    """Lemma 2 at the protocol level: O(k² log n) bits, audited."""

    def test_frugal_across_sizes(self):
        k = 3
        graphs = [random_k_degenerate(n, k, seed=n) for n in (16, 64, 256, 1024)]
        report = FrugalityAuditor().audit(DegeneracyReconstructionProtocol(k), graphs)
        # exact constant: (2 + k(k+3)/2) * id_width(n) / log2_ceil(n); id_width
        # exceeds log2_ceil by one bit at powers of two, hence the 1.25 slack
        assert report.fitted_constant <= (2 + k * (k + 3) / 2) * 1.25
        e = FrugalityAuditor.fit_scaling_exponent(report.worst_bits)
        # bits = 11 * (log2(n) + 1): slope slightly under 1 in log-log; far
        # from the >= 2 a neighbourhood-dumping protocol shows
        assert e == pytest.approx(1.0, abs=0.2)

    def test_budgeted_referee_run(self):
        from repro.model import log2_ceil

        g = random_k_degenerate(64, 2, seed=5)
        budget = (2 + 2 * 5 // 2 + 5) * log2_ceil(64)  # generous c * log n
        report = Referee(budget_bits=budget).run(DegeneracyReconstructionProtocol(2), g)
        assert report.output == g


class TestFailureInjection:
    def test_duplicate_vertex_record(self):
        records = [(1, 0, [0]), (1, 0, [0])]
        with pytest.raises(DecodeError, match="duplicate"):
            prune_decode(2, 1, records)

    def test_missing_record(self):
        with pytest.raises(DecodeError, match="expected 3"):
            prune_decode(3, 1, [(1, 0, [0]), (2, 0, [0])])

    def test_corrupt_power_sum(self):
        # vertex 1 claims degree 1 with power sum pointing at vertex 9 (absent)
        records = [(1, 1, [9]), (2, 0, [0])]
        with pytest.raises(DecodeError):
            prune_decode(2, 1, records)

    def test_negative_power_sum_detected(self):
        # vertex 2 claims edge to 1, but vertex 1's sums don't include 2
        records = [(1, 1, [2]), (2, 1, [1]), (3, 2, [1])]  # vertex 3 inconsistent
        with pytest.raises(DecodeError):
            prune_decode(3, 1, records)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 30), k=st.integers(1, 4), seed=st.integers(0, 10_000))
def test_reconstruction_identity_property(n, k, seed):
    """Property: for any random k-degenerate graph, reconstruct(G) == G."""
    g = random_k_degenerate(n, k, seed=seed)
    assert DegeneracyReconstructionProtocol(k).reconstruct(g) == g


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 14), p=st.floats(0, 1), seed=st.integers(0, 999))
def test_reconstruction_with_true_degeneracy_property(n, p, seed):
    """Property: any graph reconstructs once k is set to its true degeneracy."""
    g = erdos_renyi(n, p, seed=seed)
    k = max(1, degeneracy(g))
    assert DegeneracyReconstructionProtocol(k).reconstruct(g) == g
