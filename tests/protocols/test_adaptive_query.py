"""Tests for the adaptive multi-round reconstruction protocol."""

import pytest

from repro.errors import DecodeError
from repro.graphs import LabeledGraph
from repro.graphs.generators import complete_graph, erdos_renyi, path_graph, star_graph
from repro.model import Message, MultiRoundReferee, log2_ceil
from repro.protocols.adaptive_query import AdaptiveQueryReconstruction


class TestAdaptiveQuery:
    @pytest.mark.parametrize("gen", [
        lambda: path_graph(9),
        lambda: star_graph(12),
        lambda: complete_graph(7),
        lambda: erdos_renyi(15, 0.4, seed=3),
        lambda: LabeledGraph(6),  # edgeless: one round
        lambda: LabeledGraph(1),
    ])
    def test_reconstructs_any_graph(self, gen):
        g = gen()
        report = MultiRoundReferee().run(AdaptiveQueryReconstruction(), g)
        assert report.output == g

    def test_rounds_used_is_max_degree(self):
        g = star_graph(10)  # max degree 9
        report = MultiRoundReferee().run(AdaptiveQueryReconstruction(), g)
        assert report.rounds_used == 9

    def test_edgeless_uses_one_round(self):
        report = MultiRoundReferee().run(AdaptiveQueryReconstruction(), LabeledGraph(5))
        assert report.rounds_used == 1

    def test_messages_strictly_frugal(self):
        """Every per-round message is at most 2 ID widths — truly O(log n)."""
        g = erdos_renyi(64, 0.2, seed=5)
        report = MultiRoundReferee().run(AdaptiveQueryReconstruction(), g)
        assert report.max_node_message_bits <= 2 * (log2_ceil(64) + 1)
        assert report.output == g

    def test_tradeoff_vs_one_round(self):
        """Dense graphs: adaptive rounds beat one-round power sums on bits/message,
        pay in round count — the conclusion's trade made measurable."""
        from repro.graphs import degeneracy
        from repro.protocols import DegeneracyReconstructionProtocol

        g = erdos_renyi(32, 0.5, seed=7)
        k = degeneracy(g)
        one_round_bits = DegeneracyReconstructionProtocol(k).max_message_bits(g)
        report = MultiRoundReferee().run(AdaptiveQueryReconstruction(), g)
        assert report.output == g
        assert report.max_node_message_bits < one_round_bits
        assert report.rounds_used == max(g.degrees())

    def test_forged_overlong_report_rejected(self):
        """Failure injection: a node claiming a neighbour beyond its degree."""
        protocol = AdaptiveQueryReconstruction()
        n = 3
        w = log2_ceil(n) + 1  # id_width(3) = 2

        class Liar(AdaptiveQueryReconstruction):
            def node_step(self, n, i, neighborhood, round_idx, inbox):
                from repro.bits.writer import BitWriter

                writer = BitWriter()
                if round_idx == 0:
                    writer.write_bits(0, 2)  # claims degree 0...
                writer.write_bits(2 if i == 1 else 0, 2)  # ...but names neighbour 2
                return Message.from_writer(writer)

        with pytest.raises(DecodeError):
            MultiRoundReferee().run(Liar(), LabeledGraph(n))

    def test_degree_mismatch_rejected(self):
        """Failure injection: announced degree larger than reported neighbours."""

        class Inflater(AdaptiveQueryReconstruction):
            def node_step(self, n, i, neighborhood, round_idx, inbox):
                from repro.bits.writer import BitWriter

                w = log2_ceil(n) + 1 if n > 1 else 1
                writer = BitWriter()
                if round_idx == 0:
                    writer.write_bits(min(2, n - 1), w)  # inflate degree
                nbrs = sorted(neighborhood)
                writer.write_bits(nbrs[round_idx] if round_idx < len(nbrs) else 0, w)
                return Message.from_writer(writer)

        g = LabeledGraph(4, [(1, 2)])
        with pytest.raises(DecodeError):
            MultiRoundReferee().run(Inflater(), g)
