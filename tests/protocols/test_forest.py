"""Tests for the Section III.A forest protocol (k = 1 special case)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, RecognitionFailure
from repro.graphs import LabeledGraph
from repro.graphs.generators import cycle_graph, path_graph, random_forest, random_tree, star_graph
from repro.model import FrugalityAuditor, Message, log2_ceil
from repro.protocols import (
    DegeneracyReconstructionProtocol,
    ForestReconstructionProtocol,
    ForestRecognitionProtocol,
)


class TestForestReconstruction:
    @pytest.mark.parametrize("gen", [
        lambda: random_tree(20, seed=1),
        lambda: random_forest(20, 4, seed=2),
        lambda: path_graph(15),
        lambda: star_graph(25),
        lambda: LabeledGraph(5),  # all isolated
        lambda: LabeledGraph(1),
        lambda: LabeledGraph(2, [(1, 2)]),
    ])
    def test_exact(self, gen):
        g = gen()
        assert ForestReconstructionProtocol().reconstruct(g) == g

    def test_cycle_rejected_with_witness(self):
        g = cycle_graph(6)
        with pytest.raises(RecognitionFailure) as exc:
            ForestReconstructionProtocol().reconstruct(g)
        assert exc.value.stuck_vertices == frozenset(range(1, 7))

    def test_triangle_plus_tree_rejected(self):
        g = LabeledGraph(5, [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5)])
        with pytest.raises(RecognitionFailure) as exc:
            ForestReconstructionProtocol().reconstruct(g)
        assert exc.value.stuck_vertices == frozenset({1, 2, 3})

    def test_message_under_4_log_n(self):
        """The paper: 'this clearly can be encoded using less than 4 log n bits'."""
        p = ForestReconstructionProtocol()
        for n in (16, 256, 4096):
            g = star_graph(n)
            assert p.max_message_bits(g) <= 4 * (log2_ceil(n) + 1)

    def test_agrees_with_k1_powersum_protocol(self):
        """III.A is the k=1 instantiation of the general algorithm."""
        for seed in range(5):
            g = random_forest(18, 3, seed=seed)
            assert (
                ForestReconstructionProtocol().reconstruct(g)
                == DegeneracyReconstructionProtocol(1).reconstruct(g)
                == g
            )

    def test_malformed_message(self):
        with pytest.raises(DecodeError):
            ForestReconstructionProtocol().global_(2, [Message(0, 1), Message(0, 1)])

    def test_duplicate_ids(self):
        p = ForestReconstructionProtocol()
        m = p.local(3, 1, frozenset())
        with pytest.raises(DecodeError, match="duplicate"):
            p.global_(3, [m, m, m])


class TestForestRecognition:
    def test_accepts_forest(self):
        assert ForestRecognitionProtocol().decide(random_forest(12, 2, seed=4)) is True

    def test_rejects_cycle(self):
        assert ForestRecognitionProtocol().decide(cycle_graph(4)) is False

    def test_frugality(self):
        graphs = [random_tree(n, seed=n) for n in (8, 64, 512)]
        report = FrugalityAuditor().audit(ForestRecognitionProtocol(), graphs)
        # 4 * id_width(n) bits; id_width(8)/log2_ceil(8) = 4/3 worst case
        assert report.fitted_constant <= 4 * 4 / 3


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 40), t=st.integers(1, 6), seed=st.integers(0, 10_000))
def test_forest_reconstruction_property(n, t, seed):
    """Property: every forest round-trips through the protocol."""
    t = min(t, n)
    g = random_forest(n, t, seed=seed)
    assert ForestReconstructionProtocol().reconstruct(g) == g
