"""Tests for footnote 1's bounded-degree baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, GraphError
from repro.graphs.generators import cycle_graph, erdos_renyi, grid_2d, star_graph
from repro.model import FrugalityAuditor, log2_ceil
from repro.protocols import BoundedDegreeProtocol


class TestBoundedDegree:
    def test_reconstructs_within_promise(self):
        g = grid_2d(5, 5)  # max degree 4
        assert BoundedDegreeProtocol(4).reconstruct(g) == g

    def test_cycle(self):
        g = cycle_graph(9)
        assert BoundedDegreeProtocol(2).reconstruct(g) == g

    def test_rejects_promise_violation(self):
        g = star_graph(10)  # centre has degree 9
        with pytest.raises(DecodeError, match="promise"):
            BoundedDegreeProtocol(3).reconstruct(g)

    def test_negative_delta_rejected(self):
        with pytest.raises(GraphError):
            BoundedDegreeProtocol(-1)

    def test_message_size_is_delta_plus_2_ids(self):
        p = BoundedDegreeProtocol(3)
        n = 100
        msg = p.local(n, 1, frozenset({2, 3, 4}))
        w = 7  # id_width(100)
        assert msg.bits == w + 1 + w + 3 * w  # ID + flag + degree + 3 neighbours

    def test_frugal_on_promise_class_only(self):
        delta = 4
        good = [grid_2d(s, s) for s in (4, 8, 16)]
        report = FrugalityAuditor().audit(BoundedDegreeProtocol(delta), good)
        assert report.fitted_constant <= (delta + 2) * 1.3

    def test_contrast_with_degeneracy_protocol_on_stars(self):
        """Stars: degeneracy 1 (paper's protocol fine) but unbounded degree (baseline fails)."""
        from repro.protocols import DegeneracyReconstructionProtocol

        g = star_graph(50)
        assert DegeneracyReconstructionProtocol(1).reconstruct(g) == g
        with pytest.raises(DecodeError):
            BoundedDegreeProtocol(3).reconstruct(g)

    def test_asymmetric_claims_detected(self):
        """Failure injection: forged message vectors with one-sided edges are rejected."""
        p = BoundedDegreeProtocol(2)
        m1 = p.local(3, 1, frozenset({2}))  # 1 claims edge to 2
        m2 = p.local(3, 2, frozenset())     # 2 claims nothing
        m3 = p.local(3, 3, frozenset())
        with pytest.raises(DecodeError, match="asymmetric"):
            p.global_(3, [m1, m2, m3])


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 15), p=st.floats(0, 0.5), seed=st.integers(0, 999))
def test_bounded_degree_property(n, p, seed):
    """Property: with Δ set to the true max degree, reconstruction is exact."""
    g = erdos_renyi(n, p, seed=seed)
    delta = max(g.degrees() or [0])
    assert BoundedDegreeProtocol(max(delta, 1)).reconstruct(g) == g
