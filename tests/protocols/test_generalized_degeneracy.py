"""Tests for the Section III.E generalized-degeneracy protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, RecognitionFailure
from repro.graphs import LabeledGraph, degeneracy
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    random_forest,
    random_tree,
)
from repro.protocols import GeneralizedDegeneracyProtocol
from repro.protocols.generalized_degeneracy import generalized_degeneracy


class TestGeneralizedDegeneracyValue:
    def test_complete_graph_is_0(self):
        # every suffix has co-degree 0
        assert generalized_degeneracy(complete_graph(6)) == 0

    def test_empty_graph_is_0(self):
        assert generalized_degeneracy(LabeledGraph(6)) == 0

    def test_at_most_plain_degeneracy(self):
        for seed in range(5):
            g = erdos_renyi(12, 0.4, seed=seed)
            assert generalized_degeneracy(g) <= max(0, degeneracy(g))

    def test_complement_of_tree_is_at_most_1(self):
        g = random_tree(10, seed=3).complement()
        assert generalized_degeneracy(g) <= 1

    def test_balanced_complete_bipartite_is_large(self):
        # K_{4,4}: every vertex has degree 4 and co-degree 3
        assert generalized_degeneracy(complete_bipartite(4, 4)) == 3


class TestGeneralizedReconstruction:
    def test_sparse_graphs(self):
        g = random_forest(15, 3, seed=1)
        assert GeneralizedDegeneracyProtocol(1).reconstruct(g) == g

    def test_dense_complements(self):
        """The family plain degeneracy cannot touch: complements of forests."""
        g = random_tree(12, seed=5).complement()
        assert degeneracy(g) >= 8  # far above k...
        assert GeneralizedDegeneracyProtocol(1).reconstruct(g) == g

    def test_complete_graph(self):
        g = complete_graph(9)
        assert GeneralizedDegeneracyProtocol(1).reconstruct(g) == g

    def test_mixed_join_like_graph(self):
        # dense core (complement-prunable) with sparse pendant (degree-prunable)
        core = complete_graph(6)
        g = core.extended(3, [(6, 7), (7, 8), (8, 9)])
        assert generalized_degeneracy(g) <= 2
        assert GeneralizedDegeneracyProtocol(2).reconstruct(g) == g

    def test_rejects_above_bound(self):
        # C6 has generalized degeneracy 2 (degree 2, co-degree 3)
        g = cycle_graph(6)
        with pytest.raises(RecognitionFailure):
            GeneralizedDegeneracyProtocol(1).reconstruct(g)

    def test_k0_rejected(self):
        with pytest.raises(GraphError):
            GeneralizedDegeneracyProtocol(0)

    def test_message_is_twice_powersum(self):
        from repro.protocols.powersum import powersum_message_bits

        p = GeneralizedDegeneracyProtocol(2)
        msg = p.local(20, 1, frozenset({2, 3}))
        w_id = 5  # id_width(20)
        # ID + deg + two power-sum blocks: (2 + 2*(2+3)) * w
        assert msg.bits == 2 * powersum_message_bits(20, 2) - 2 * w_id


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 12), p=st.floats(0, 1), seed=st.integers(0, 999))
def test_generalized_reconstruction_property(n, p, seed):
    """Property: with k = the true generalized degeneracy, reconstruction is exact."""
    g = erdos_renyi(n, p, seed=seed)
    k = max(1, generalized_degeneracy(g))
    assert GeneralizedDegeneracyProtocol(k).reconstruct(g) == g


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 12), p=st.floats(0, 1), seed=st.integers(0, 999))
def test_complement_symmetry_property(n, p, seed):
    """Property: generalized degeneracy is invariant under complementation."""
    g = erdos_renyi(n, p, seed=seed)
    assert generalized_degeneracy(g) == generalized_degeneracy(g.complement())
