"""Ablation tests: what breaks when pieces of the paper's design are removed.

These pin down *why* Algorithm 3 sends what it sends:

* fewer than ``deg(x)`` power sums cannot determine the neighbourhood
  (Wright's theorem is tight — Theorem 4 needs all k powers);
* a protocol parameterized below the true degeneracy gets stuck, it never
  silently mis-reconstructs (the failure mode is a rejection, not a wrong
  graph);
* the ID field cannot be dropped: messages are a *vector* only because each
  carries its sender.
"""

import pytest

from repro.errors import DecodeError, RecognitionFailure
from repro.graphs import degeneracy
from repro.graphs.generators import k_tree, random_k_degenerate
from repro.protocols import DegeneracyReconstructionProtocol
from repro.protocols.powersum import compute_power_sums, decode_neighborhood_newton


class TestPowerSumCountIsTight:
    def test_k_minus_one_sums_cannot_decode_degree_k(self):
        """Decoding a degree-3 neighbourhood from 2 power sums must fail loudly."""
        nbhd = frozenset({2, 5, 9})
        sums = compute_power_sums(nbhd, 3)
        with pytest.raises(DecodeError):
            decode_neighborhood_newton(3, sums[:2], 12)

    def test_first_power_sum_alone_is_ambiguous(self):
        """The classical {1,4} vs {2,3} collision: p1 equal, p2 differs."""
        a, b = frozenset({1, 4}), frozenset({2, 3})
        assert compute_power_sums(a, 1) == compute_power_sums(b, 1)
        assert decode_neighborhood_newton(2, compute_power_sums(a, 2), 4) == a
        assert decode_neighborhood_newton(2, compute_power_sums(b, 2), 4) == b

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_all_k_sums_suffice_exactly_at_degree_k(self, k):
        nbhd = frozenset(range(2, 2 + k))
        sums = compute_power_sums(nbhd, k)
        assert decode_neighborhood_newton(k, sums, 20) == nbhd


class TestUnderParameterizedProtocolFailsSafe:
    @pytest.mark.parametrize("k_true", [2, 3, 4])
    def test_rejects_rather_than_misreconstructs(self, k_true):
        """k' = k_true - 1: the referee gets stuck; it never returns a wrong graph."""
        g = k_tree(k_true + 10, k_true, seed=k_true)
        assert degeneracy(g) == k_true
        protocol = DegeneracyReconstructionProtocol(k_true - 1) if k_true > 1 else None
        if protocol is None:
            return
        with pytest.raises(RecognitionFailure):
            protocol.reconstruct(g)

    def test_over_parameterized_costs_bits_not_correctness(self):
        """k' > k_true still reconstructs — the price is message size only."""
        g = random_k_degenerate(20, 2, seed=5)
        small = DegeneracyReconstructionProtocol(2)
        big = DegeneracyReconstructionProtocol(5)
        assert small.reconstruct(g) == big.reconstruct(g) == g
        assert big.max_message_bits(g) > small.max_message_bits(g)


class TestMessageVectorNeedsSenderIds:
    def test_permuted_messages_decode_to_permuted_graph_or_fail(self):
        """Messages carry their sender ID, so the referee survives reordering —
        remove that property (swap two nodes' IDs inside the payloads) and the
        decode visibly breaks or yields a different labelled graph."""
        from repro.graphs.generators import random_tree
        from repro.protocols.powersum import decode_powersum_message, encode_powersum_message

        g = random_tree(10, seed=8)
        protocol = DegeneracyReconstructionProtocol(1)
        msgs = protocol.message_vector(g)
        # swapping the position of two messages changes nothing (IDs inside)
        swapped = list(msgs)
        swapped[0], swapped[5] = swapped[5], swapped[0]
        assert protocol.global_(g.n, swapped) == g
        # but forging vertex 1's message as if sent by vertex 2 breaks the vector
        rec = decode_powersum_message(g.n, 1, msgs[0])
        forged = encode_powersum_message(g.n, 1, 2, g.neighbors(1))
        with pytest.raises(DecodeError):
            protocol.global_(g.n, [forged] + list(msgs[1:]))
