"""Tests for the coalition (partition-argument) model."""

import pytest

from repro.graphs import has_square, has_triangle
from repro.graphs.generators import erdos_renyi
from repro.reductions.coalition import (
    EdgeStatsCoalitionEncoder,
    HashedCoalitionEncoder,
    coalition_capacity_bits,
    coalition_parts,
    find_coalition_collision,
)


class TestParts:
    def test_balanced(self):
        assert coalition_parts(7, 3) == [(1, 2, 3), (4, 5), (6, 7)]

    def test_single_part(self):
        assert coalition_parts(4, 1) == [(1, 2, 3, 4)]

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            coalition_parts(4, 0)

    def test_capacity_constant_in_n(self):
        assert coalition_capacity_bits(3, 64) == 192  # no n anywhere


class TestCoalitionCollisions:
    """The conclusion's point: 2-3 coalitions with bounded messages still collide."""

    def test_hashed_coalition_killed_on_squares(self):
        # 2 parts x 3 bits = 64 message vectors vs 1024 graphs: pigeonhole bites
        enc = HashedCoalitionEncoder(c=2, bits=3, salt=3)
        w = find_coalition_collision(enc, 5, has_square, "has_square")
        assert w is not None
        assert w.verify(enc, has_square)

    def test_hashed_three_coalitions_killed(self):
        enc = HashedCoalitionEncoder(c=3, bits=3, salt=5)
        w = find_coalition_collision(enc, 5, has_triangle, "has_triangle")
        assert w is not None
        assert w.verify(enc, has_triangle)

    def test_edge_stats_killed_on_squares(self):
        enc = EdgeStatsCoalitionEncoder(c=2)
        w = find_coalition_collision(enc, 5, has_square, "has_square")
        assert w is not None
        assert w.verify(enc, has_square)

    def test_wide_digest_survives_tiny_n(self):
        """With 2^{cB} >> #graphs the pigeonhole has no teeth — as expected."""
        enc = HashedCoalitionEncoder(c=2, bits=48, salt=1)
        assert find_coalition_collision(enc, 4, has_square) is None

    def test_message_vector_shape(self):
        g = erdos_renyi(9, 0.3, seed=2)
        enc = EdgeStatsCoalitionEncoder(c=3)
        vec = enc.message_vector(g)
        assert len(vec) == 3
        assert all(m.bits > 0 for m in vec)

    def test_coalitions_pool_knowledge(self):
        """A part's message depends on members' neighbourhoods jointly:
        moving an edge between two members' views changes the message."""
        from repro.graphs import LabeledGraph

        enc = EdgeStatsCoalitionEncoder(c=2)
        g1 = LabeledGraph(4, [(1, 2)])          # edge inside part {1,2}
        g2 = LabeledGraph(4, [(1, 3)])          # edge leaving part {1,2}
        v1 = enc.message_vector(g1)
        v2 = enc.message_vector(g2)
        assert v1 != v2
