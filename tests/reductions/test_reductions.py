"""End-to-end tests for the Theorem 1–3 reductions with oracle detectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import LabeledGraph
from repro.graphs.families import figure1_base, figure2_base, petersen
from repro.graphs.generators import (
    erdos_renyi,
    path_graph,
    random_bipartite,
    random_square_free,
    random_tree,
)
from repro.model import Message, Referee
from repro.reductions import (
    DiameterReduction,
    OracleDiameterDetector,
    OracleSquareDetector,
    OracleTriangleDetector,
    SquareReduction,
    TriangleReduction,
)
from repro.reductions.framing import pack_messages, unpack_messages


class TestFraming:
    def test_roundtrip(self):
        parts = [Message(0b101, 3), Message.empty(), Message(0xFFFF, 16)]
        packed = pack_messages(parts)
        assert unpack_messages(packed, 3) == parts

    def test_wrong_count_raises(self):
        from repro.errors import DecodeError

        packed = pack_messages([Message(1, 1)])
        with pytest.raises(DecodeError):
            unpack_messages(packed, 2)

    def test_leftover_raises(self):
        from repro.errors import DecodeError

        packed = pack_messages([Message(1, 1), Message(0, 2)])
        with pytest.raises(DecodeError):
            unpack_messages(packed, 1)


class TestSquareReduction:
    """Theorem 1: detector Γ ⇒ reconstructor Δ for square-free graphs."""

    def test_reconstructs_petersen(self):
        delta = SquareReduction(OracleSquareDetector())
        g = petersen()
        assert delta.reconstruct(g) == g

    @pytest.mark.parametrize("seed", range(3))
    def test_reconstructs_random_square_free(self, seed):
        delta = SquareReduction(OracleSquareDetector())
        g = random_square_free(8, 0.3, seed=seed)
        assert delta.reconstruct(g) == g

    def test_reconstructs_trees(self):
        delta = SquareReduction(OracleSquareDetector())
        g = random_tree(9, seed=5)
        assert delta.reconstruct(g) == g

    def test_message_blowup_is_k_of_2n(self):
        """The paper's remark: Δ uses k(2n) bits where Γ uses k(n)."""
        gamma = OracleSquareDetector()
        delta = SquareReduction(gamma)
        g = random_square_free(8, 0.3, seed=1)
        # oracle's k(n) = n bits, so Δ's messages must be exactly 2n = 16 bits
        assert delta.max_message_bits(g) == 2 * g.n

    def test_local_is_st_independent(self):
        """Δ's local phase sends ONE message usable for every (s,t) simulation."""
        delta = SquareReduction(OracleSquareDetector())
        m = delta.local(4, 2, frozenset({1, 3}))
        # equals Γ's message for vertex 2 of the gadget: N ∪ {2+4}
        expected = OracleSquareDetector().local(8, 2, frozenset({1, 3, 6}))
        assert m == expected


class TestDiameterReduction:
    """Theorem 2: diameter-≤3 detector ⇒ reconstructor for ALL graphs."""

    @pytest.mark.parametrize("gen", [
        lambda: figure1_base(),
        lambda: erdos_renyi(7, 0.4, seed=3),
        lambda: erdos_renyi(7, 0.8, seed=4),
        lambda: path_graph(6),
        lambda: LabeledGraph(5),  # edgeless
        lambda: LabeledGraph(6, [(1, 2), (4, 5)]),  # disconnected
    ])
    def test_reconstructs_arbitrary_graphs(self, gen):
        delta = DiameterReduction(OracleDiameterDetector(3))
        g = gen()
        assert delta.reconstruct(g) == g

    def test_message_blowup_is_3x_plus_framing(self):
        """"Δ is frugal, since its messages are three times as big as those of Γ"."""
        gamma = OracleDiameterDetector(3)
        delta = DiameterReduction(gamma)
        g = figure1_base()
        gamma_bits = g.n + 3  # oracle message on an (n+3)-vertex gadget
        bits = delta.max_message_bits(g)
        assert bits >= 3 * gamma_bits
        assert bits <= 3 * gamma_bits + 40  # delta-code framing overhead only

    def test_referee_run(self):
        g = erdos_renyi(6, 0.5, seed=9)
        report = Referee().run(DiameterReduction(OracleDiameterDetector(3)), g)
        assert report.output == g


class TestTriangleReduction:
    """Theorem 3: triangle detector ⇒ reconstructor for triangle-free graphs."""

    def test_reconstructs_figure2(self):
        delta = TriangleReduction(OracleTriangleDetector())
        g = figure2_base()
        assert delta.reconstruct(g) == g

    @pytest.mark.parametrize("seed", range(3))
    def test_reconstructs_bipartite(self, seed):
        delta = TriangleReduction(OracleTriangleDetector())
        g = random_bipartite(5, 4, 0.4, seed=seed)
        assert delta.reconstruct(g) == g

    def test_reconstructs_triangle_free_nonbipartite(self):
        """C5 is triangle-free but odd: the reduction covers it too."""
        from repro.graphs.generators import cycle_graph

        delta = TriangleReduction(OracleTriangleDetector())
        g = cycle_graph(5)
        assert delta.reconstruct(g) == g

    def test_message_blowup_is_2x_plus_framing(self):
        gamma = OracleTriangleDetector()
        delta = TriangleReduction(gamma)
        g = figure2_base()
        gamma_bits = g.n + 1
        bits = delta.max_message_bits(g)
        assert bits >= 2 * gamma_bits
        assert bits <= 2 * gamma_bits + 30


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 7), p=st.floats(0.1, 0.7), seed=st.integers(0, 999))
def test_diameter_reduction_identity_property(n, p, seed):
    """Property: the Theorem 2 reduction reconstructs ANY graph exactly."""
    g = erdos_renyi(n, p, seed=seed)
    assert DiameterReduction(OracleDiameterDetector(3)).reconstruct(g) == g


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 7), p=st.floats(0.1, 0.6), seed=st.integers(0, 999))
def test_square_reduction_identity_property(n, p, seed):
    """Property: the Theorem 1 reduction reconstructs any square-free graph."""
    g = random_square_free(n, p, seed=seed)
    assert SquareReduction(OracleSquareDetector()).reconstruct(g) == g
