"""Tests for Lemma 1's bound checker and the adversarial collision search."""

import math

import pytest

from repro.graphs import has_square, has_triangle
from repro.graphs.counting import (
    bipartite_fixed_parts_count,
    labeled_forest_count,
    labeled_graph_count,
)
from repro.graphs.generators import erdos_renyi, random_forest, random_k_degenerate
from repro.protocols import DegeneracyReconstructionProtocol, ForestReconstructionProtocol
from repro.reductions import (
    DegreeEncoder,
    DegreeSumEncoder,
    HashedNeighborhoodEncoder,
    PowerSumEncoder,
    capacity_gap_rows,
    find_collision_exhaustive,
    find_collision_sampled,
    lemma1_admits_reconstruction,
    message_vectors_injective,
)


class TestLemma1Arithmetic:
    def test_all_graphs_eventually_exceed_capacity(self):
        n = 256
        assert not lemma1_admits_reconstruction(
            math.log2(labeled_graph_count(n)), n, k_const=8.0
        )

    def test_forests_always_fit(self):
        for n in (8, 64, 512):
            assert lemma1_admits_reconstruction(
                math.log2(labeled_forest_count(n)), n, k_const=2.0
            )

    def test_capacity_gap_rows_shape(self):
        rows = capacity_gap_rows(
            [16, 64],
            k_const=4.0,
            families={
                "all": lambda n: math.log2(labeled_graph_count(n)),
                "forests": lambda n: math.log2(labeled_forest_count(n)),
            },
        )
        assert len(rows) == 2
        assert {"n", "capacity_bits", "log2_all", "fits_all", "log2_forests", "fits_forests"} <= set(rows[0])
        # forests fit at both sizes; all-graphs do not at n = 64 with c = 4
        assert rows[1]["fits_forests"] == 1.0
        assert rows[1]["fits_all"] == 0.0

    def test_bipartite_grows_quadratically(self):
        n = 128
        assert math.log2(bipartite_fixed_parts_count(n)) == (n // 2) ** 2


class TestInjectivity:
    def test_reconstruction_protocol_is_injective_on_its_family(self):
        graphs = [random_k_degenerate(8, 2, seed=s) for s in range(60)]
        ok, witness = message_vectors_injective(DegeneracyReconstructionProtocol(2), graphs)
        assert ok and witness is None

    def test_degree_encoder_not_injective(self):
        """Two different forests share a degree sequence -> not reconstructible."""

        class _Wrap(DegreeEncoder):
            def message_vector(self, g):
                return tuple(self.local(g.n, i, g.neighbors(i)) for i in g.vertices())

        from repro.graphs import LabeledGraph

        g1 = LabeledGraph(4, [(1, 2), (3, 4)])
        g2 = LabeledGraph(4, [(1, 3), (2, 4)])

        class _P(ForestReconstructionProtocol):
            def local(self, n, i, neighborhood):
                return DegreeEncoder().local(n, i, neighborhood)

        ok, witness = message_vectors_injective(_P(), [g1, g2])
        assert not ok and set(witness) == {g1, g2}


class TestCollisionSearch:
    """EXP-ADV: frugal candidate encoders vs the pigeonhole.

    Measured finding (recorded in EXPERIMENTS.md): the weakest encoders die
    at tiny n, while the Section III.A (degree, id-sum) encoder is
    collision-free through n = 7 — the paper's impossibility is *asymptotic*
    (collisions are forced once 2^{Θ(n^{3/2})} square-free graphs outnumber
    the 2^{O(n log n)} message vectors, far beyond enumeration range).
    """

    def test_degree_encoder_killed_exhaustively(self):
        w = find_collision_exhaustive(DegreeEncoder(), 5, has_square, "has_square")
        assert w is not None
        assert w.verify(DegreeEncoder(), has_square)

    def test_degree_encoder_survives_n4(self):
        """At n = 4 the labelled degree vector still pins down square-ness."""
        assert find_collision_exhaustive(DegreeEncoder(), 4, has_square) is None

    def test_degree_sum_encoder_survives_small_n(self):
        """The forest encoder is square-rigid at enumerable sizes (n <= 6 here;
        n = 7 is certified by the vectorized bench)."""
        for n in (4, 5, 6):
            assert find_collision_exhaustive(DegreeSumEncoder(), n, has_square) is None

    def test_powersum_k1_survives_small_n(self):
        """Algorithm 3's k=1 message extends (deg, sum) with the ID: also rigid."""
        assert find_collision_exhaustive(PowerSumEncoder(1), 5, has_square) is None

    def test_degree_encoder_killed_on_triangles(self):
        w = find_collision_exhaustive(DegreeEncoder(), 5, has_triangle, "has_triangle")
        assert w is not None
        assert w.verify(DegreeEncoder(), has_triangle)

    def test_sampled_search_finds_hash_collision(self):
        def stream():
            s = 0
            while True:
                yield erdos_renyi(6, 0.4, seed=s)
                s += 1

        enc = HashedNeighborhoodEncoder(bits=1, salt=3)
        w = find_collision_sampled(enc, stream(), has_square, "has_square", max_samples=4000)
        assert w is not None
        assert w.verify(enc, has_square)

    def test_sampled_search_gives_up_gracefully(self):
        def stream():
            s = 0
            while True:
                yield random_forest(8, 2, seed=s)
                s += 1

        # forest messages are injective on forests (the protocol reconstructs
        # them!), so no collision exists in this stream
        w = find_collision_sampled(
            DegreeSumEncoder(), stream(), has_square, max_samples=300
        )
        assert w is None

    def test_hashed_encoder_with_tiny_digest_killed(self):
        w = find_collision_exhaustive(
            HashedNeighborhoodEncoder(bits=2, salt=7), 4, has_square, "has_square"
        )
        assert w is not None
        assert w.verify(HashedNeighborhoodEncoder(bits=2, salt=7), has_square)

    def test_forced_collision_crossover_is_finite(self):
        """Lemma 1 + Kleitman–Winston: find the n where square-free graphs
        alone outnumber every possible 4-log-unit message vector — beyond
        that, ANY such encoder has a square-blind collision pair."""
        import math as _m

        from repro.graphs.counting import zarankiewicz_lower_bound

        def capacity(n):  # 4 log-units per node, the (deg, sum) budget
            return 4.0 * n * _m.log2(n)

        crossover = next(n for n in range(4, 100_000) if zarankiewicz_lower_bound(n) > capacity(n))
        assert 1_000 < crossover < 50_000  # finite but far beyond enumeration
