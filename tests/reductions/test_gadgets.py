"""Tests for the G'_{s,t} gadget iff-properties — the content of Figures 1 and 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidVertexError
from repro.graphs import diameter, has_square, has_triangle
from repro.graphs.families import figure1_base, figure2_base, petersen
from repro.graphs.generators import erdos_renyi, random_bipartite, random_square_free
from repro.reductions import diameter_gadget, square_gadget, triangle_gadget


class TestSquareGadget:
    def test_structure(self):
        g = petersen()
        gp = square_gadget(g, 1, 7)
        assert gp.n == 20
        assert gp.m == g.m + 10 + 1
        for i in range(1, 11):
            assert gp.has_edge(i, 10 + i)
        assert gp.has_edge(11, 17)

    def test_iff_property_all_pairs(self):
        """On a square-free G: C4 in G'_{s,t} iff {s,t} ∈ E — for every pair."""
        g = random_square_free(9, 0.3, seed=4)
        assert not has_square(g)
        for s in range(1, 10):
            for t in range(s + 1, 10):
                assert has_square(square_gadget(g, s, t)) == g.has_edge(s, t)

    def test_original_neighborhoods_do_not_depend_on_st(self):
        """The reduction's key fact: N_{G'}(i) = N_G(i) ∪ {i+n} for all (s,t)."""
        g = petersen()
        a = square_gadget(g, 1, 2)
        b = square_gadget(g, 9, 10)
        for i in g.vertices():
            assert a.neighbors(i) == b.neighbors(i) == g.neighbors(i) | {i + 10}

    def test_rejects_bad_pairs(self):
        g = petersen()
        with pytest.raises(InvalidVertexError):
            square_gadget(g, 1, 1)
        with pytest.raises(InvalidVertexError):
            square_gadget(g, 0, 2)
        with pytest.raises(InvalidVertexError):
            square_gadget(g, 1, 11)


class TestDiameterGadget:
    """Figure 1: diam(G'_{s,t}) <= 3 iff {s,t} ∈ E, else exactly 4."""

    def test_figure1_instance(self):
        g = figure1_base()
        # (1, 7) is NOT an edge: diameter 4 (the caption's "longest path goes
        # from 8 to 9" — our n+1, n+2)
        gp = diameter_gadget(g, 1, 7)
        assert diameter(gp) == 4
        # (1, 2) IS an edge: diameter 3
        assert diameter(diameter_gadget(g, 1, 2)) <= 3

    def test_iff_property_all_pairs(self):
        g = erdos_renyi(8, 0.35, seed=11)
        for s in range(1, 9):
            for t in range(s + 1, 9):
                gp = diameter_gadget(g, s, t)
                if g.has_edge(s, t):
                    assert diameter(gp) <= 3
                else:
                    assert diameter(gp) == 4

    def test_structure(self):
        g = figure1_base()
        gp = diameter_gadget(g, 1, 7)
        assert gp.n == 10
        assert gp.neighbors(8) == {1}
        assert gp.neighbors(9) == {7}
        assert gp.neighbors(10) == set(range(1, 8))

    def test_works_on_disconnected_inputs(self):
        """The universal vertex makes G' connected even when G is not."""
        from repro.graphs import LabeledGraph

        g = LabeledGraph(6, [(1, 2), (4, 5)])
        gp = diameter_gadget(g, 3, 6)
        assert diameter(gp) == 4  # finite, and (3,6) not an edge


class TestTriangleGadget:
    """Figure 2: on triangle-free G, K3 in G'_{s,t} iff {s,t} ∈ E."""

    def test_figure2_instance(self):
        g = figure2_base()
        assert has_triangle(triangle_gadget(g, 2, 7))      # (2,7) ∈ E
        assert not has_triangle(triangle_gadget(g, 1, 7))  # (1,7) ∉ E

    def test_iff_property_all_pairs(self):
        g = random_bipartite(5, 5, 0.4, seed=2)
        for s in range(1, 11):
            for t in range(s + 1, 11):
                assert has_triangle(triangle_gadget(g, s, t)) == g.has_edge(s, t)

    def test_structure(self):
        g = figure2_base()
        gp = triangle_gadget(g, 2, 7)
        assert gp.n == 8 and gp.neighbors(8) == {2, 7}


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 9), p=st.floats(0.1, 0.6), seed=st.integers(0, 999), data=st.data())
def test_gadget_iff_properties_random(n, p, seed, data):
    """Property: all three gadget equivalences hold on random admissible inputs."""
    s = data.draw(st.integers(1, n))
    t = data.draw(st.integers(1, n).filter(lambda x: x != s))
    g_any = erdos_renyi(n, p, seed=seed)
    gp = diameter_gadget(g_any, s, t)
    assert (diameter(gp) <= 3) == g_any.has_edge(s, t)

    g_sf = random_square_free(n, p, seed=seed)
    assert has_square(square_gadget(g_sf, s, t)) == g_sf.has_edge(s, t)

    a = n // 2
    g_bip = random_bipartite(a, n - a, p, seed=seed)
    assert has_triangle(triangle_gadget(g_bip, s, t)) == g_bip.has_edge(s, t)
