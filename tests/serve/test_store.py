"""JobStore unit battery: durability, recovery, and state discipline."""

import json

import pytest

from repro.errors import JobNotFound, ServeError
from repro.serve.store import JOB_STATES, PRIORITIES, TERMINAL_STATES, JobStore

PAYLOAD = {"builtin": "smoke"}


def _create(store, **kwargs):
    defaults = dict(campaign=PAYLOAD, name="smoke")
    defaults.update(kwargs)
    return store.create(**defaults)


def test_create_assigns_sequential_ids_and_persists(tmp_path):
    store = JobStore(tmp_path)
    a = _create(store)
    b = _create(store, shards=3, priority="high")
    assert (a["id"], b["id"]) == ("j000001", "j000002")
    assert a["state"] == "queued" and a["shards_done"] == [False]
    assert b["shards_done"] == [False, False, False]
    # the state file on disk is the source of truth for a restart
    on_disk = json.loads((tmp_path / "jobs" / "j000002" / "job.json").read_text())
    assert on_disk["priority"] == "high" and on_disk["shards"] == 3
    assert store.results_dir("j000001").is_dir()


def test_create_validates_priority_and_shards(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(ServeError, match="priority"):
        _create(store, priority="urgent")
    with pytest.raises(ServeError, match="shards"):
        _create(store, shards=0)


def test_get_unknown_raises_job_not_found(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(JobNotFound, match="j999999"):
        store.get("j999999")


def test_counts_cover_every_state_and_active(tmp_path):
    store = JobStore(tmp_path)
    a = _create(store)
    _create(store)
    counts = store.counts()
    assert set(counts) == set(JOB_STATES)  # zero-valued states stay present
    assert counts["queued"] == 2 and store.active() == 2
    store.update(a["id"], state="done")
    assert store.active() == 1 and store.counts()["done"] == 1


def test_mark_shard_done_accumulates(tmp_path):
    store = JobStore(tmp_path)
    job = _create(store, shards=2)
    store.mark_shard_done(job["id"], 0, records=5, resumed=2, cache_hits=1)
    job = store.mark_shard_done(job["id"], 1, records=3, resumed=0)
    assert job["shards_done"] == [True, True]
    assert (job["records"], job["resumed"], job["cache_hits"]) == (8, 2, 1)


def test_recover_demotes_running_and_resets_progress(tmp_path):
    store = JobStore(tmp_path)
    running = _create(store, shards=2)
    done = _create(store)
    store.update(running["id"], state="running", records=7, resumed=3,
                 shards_done=[True, False])
    store.update(done["id"], state="done", records=8)

    fresh = JobStore(tmp_path)  # a new daemon process
    queued = fresh.recover()
    assert [j["id"] for j in queued] == [running["id"]]
    revived = fresh.get(running["id"])
    assert revived["state"] == "queued"
    assert revived["shards_done"] == [False, False]
    assert revived["records"] == 0 and revived["resumed"] == 0
    # terminal jobs survive recovery untouched
    assert fresh.get(done["id"])["state"] == "done"
    assert fresh.get(done["id"])["records"] == 8
    # the demotion itself is durable, not memory-only
    on_disk = json.loads(
        (tmp_path / "jobs" / running["id"] / "job.json").read_text()
    )
    assert on_disk["state"] == "queued"


def test_recover_continues_the_id_sequence(tmp_path):
    store = JobStore(tmp_path)
    _create(store)
    _create(store)
    fresh = JobStore(tmp_path)
    fresh.recover()
    assert _create(fresh)["id"] == "j000003"  # never reuses an existing ID


def test_recover_skips_unreadable_state_files(tmp_path):
    store = JobStore(tmp_path)
    good = _create(store)
    bad_dir = tmp_path / "jobs" / "j000099"
    bad_dir.mkdir(parents=True)
    (bad_dir / "job.json").write_text("{torn")
    fresh = JobStore(tmp_path)
    fresh.recover()
    assert [j["id"] for j in fresh.list()] == [good["id"]]
    assert (bad_dir / "job.json").exists()  # left for post-mortem


def test_module_constants_are_consistent():
    assert TERMINAL_STATES < set(JOB_STATES)
    assert "queued" not in TERMINAL_STATES and "running" not in TERMINAL_STATES
    assert list(PRIORITIES) == ["high", "normal", "low"]
    assert sorted(PRIORITIES.values()) == list(PRIORITIES.values())
