"""Subprocess daemon battery: kill -9 durability, SIGTERM hygiene.

These tests run ``python -m repro serve`` as a real child process — the
only way to exercise the whole stack at once: CLI entry, signal
handling, the durable store across true process death, and executor
teardown (no orphaned pool children).

Invariants under test:

* **kill -9 + restart = zero recomputation.**  A daemon killed without
  warning loses nothing durable; the restarted daemon's resume replays
  every record that had reached the shard streams and computes only the
  rest, and the finished output matches a direct engine run byte for
  byte (modulo the timing/cached sidecars).
* **SIGTERM leaves no orphans and a clean store.**  Graceful shutdown
  reaps every executor child (found via an environment marker in
  ``/proc``) and requeues interrupted jobs as ``queued`` so the next
  daemon resumes them.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time
import uuid

from repro.engine import Campaign, Scenario, SerialExecutor
from repro.engine.shard import shard_stream_path
from repro.serve import ServeClient

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _spec(seeds: int, sizes=(512,)) -> dict:
    scenario = Scenario(name="big", family="random_forest", sizes=tuple(sizes),
                        protocol="forest", seeds=tuple(range(seeds)))
    return Campaign([scenario], name="big", results_dir=None).to_dict()


def _strip(jsonl_text):
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


def _start_daemon(root, *, executor="serial", workers=1, jobs=None, env=None):
    """Launch ``repro serve --port 0``; return (process, client)."""
    cmd = [sys.executable, "-m", "repro", "serve", "--port", "0",
           "--root", str(root), "--executor", executor,
           "--workers", str(workers)]
    if jobs is not None:
        cmd += ["--jobs", str(jobs)]
    full_env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
    full_env.update(env or {})
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=full_env)
    banner = proc.stdout.readline()  # blocks until the socket is bound
    match = re.search(r"listening on (http://[0-9.]+:\d+)", banner)
    assert match, f"no listening banner, got: {banner!r}"
    return proc, ServeClient(match.group(1))


def _durable_records(results_dir, name, shards):
    """Complete (newline-terminated) record lines across all shard streams."""
    total = 0
    for i in range(shards):
        stream = shard_stream_path(results_dir, name, i, shards)
        if stream.exists():
            data = stream.read_bytes()
            total += data[: data.rfind(b"\n") + 1].count(b"\n")
    return total


def test_kill_dash_nine_then_restart_recomputes_nothing(tmp_path):
    root = tmp_path / "serve-data"
    n_records = 80
    proc, client = _start_daemon(root)
    try:
        job = client.submit(spec=_spec(n_records), shards=2)
        # let a few records become durable, then pull the plug mid-flight
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            view = client.job(job.id)
            if view["progress"]["records"] >= 3:
                break
            time.sleep(0.005)
        assert view["progress"]["records"] >= 3, "job never started streaming"
        assert view["state"] == "running"
    finally:
        proc.kill()  # SIGKILL: no cleanup, no goodbye
        proc.wait(timeout=30)

    results_dir = root / "jobs" / job.id / "results"
    durable = _durable_records(results_dir, "big", 2)
    assert 0 < durable < n_records, "the kill must land mid-campaign"

    proc2, client2 = _start_daemon(root)
    try:
        view = client2.wait(job.id, timeout=90)
        assert view["state"] == "done"
        assert view["records"] == n_records
        # zero recomputation: exactly the durable prefix was replayed,
        # everything else executed once — never a record computed twice
        assert view["resumed"] == durable
        served = _strip(pathlib.Path(view["jsonl"]).read_text())
    finally:
        proc2.terminate()
        proc2.wait(timeout=30)

    direct_dir = tmp_path / "direct"
    campaign = Campaign.from_dict(_spec(n_records), results_dir=direct_dir,
                                  use_cache=False)
    result = campaign.run(SerialExecutor(), progress=False)
    direct = _strip(pathlib.Path(result.jsonl_path).read_text())
    assert served == direct


def _procs_with_marker(marker: bytes) -> list[int]:
    pids = []
    for entry in pathlib.Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            environ = (entry / "environ").read_bytes()
        except OSError:
            continue  # raced a process exit, or no permission
        if marker in environ:
            pids.append(int(entry.name))
    return pids


def test_sigterm_leaves_no_orphans_and_a_clean_store(tmp_path):
    marker = f"REPRO_SERVE_TEST_{uuid.uuid4().hex}"
    root = tmp_path / "serve-data"
    proc, client = _start_daemon(
        root, executor="process", workers=1, jobs=2,
        env={"REPRO_TEST_MARKER": marker},
    )
    try:
        job = client.submit(spec=_spec(120, sizes=(256, 512)))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.job(job.id)["state"] == "running":
                break
            time.sleep(0.005)
        assert client.job(job.id)["state"] == "running"
        assert len(_procs_with_marker(marker.encode())) >= 1  # daemon's tree
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
    assert code == 0  # graceful: drained, requeued, stopped

    # no process anywhere still carries the daemon's environment — the
    # executor's pool children were reaped, not abandoned
    assert _procs_with_marker(marker.encode()) == []

    # the store is clean: the interrupted job went back to queued with
    # its progress counters reset, ready for the next daemon's resume
    state = json.loads((root / "jobs" / job.id / "job.json").read_text())
    assert state["state"] == "queued"
    assert state["records"] == 0 and state["resumed"] == 0
    assert state["note"] == "requeued at daemon shutdown"

    # and a restarted daemon actually finishes it
    proc2, client2 = _start_daemon(root)
    try:
        view = client2.wait(job.id, timeout=90)
        assert view["state"] == "done"
        assert view["records"] == 240
    finally:
        proc2.terminate()
        proc2.wait(timeout=30)
