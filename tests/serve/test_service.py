"""End-to-end service battery over a real socket.

A :class:`~repro.serve.http.ServerThread` hosts the daemon in-process;
every test talks to it through :class:`~repro.serve.client.ServeClient`
— the same wire path (hand-rolled HTTP/1.1, chunked streaming) the CLI
and a remote client use.  The acceptance invariant: a campaign run
through the service produces records identical (modulo the
``timing``/``cached`` sidecars) to the engine running it directly.
"""

import json

import pytest

from repro.engine import Campaign, SerialExecutor, builtin_campaign
from repro.errors import JobNotFound, QueueFull, ServeError
from repro.serve import ServeClient, ServerThread


def _strip(jsonl_text):
    """Record lines minus the nondeterministic sidecars, re-canonicalized."""
    out = []
    for line in jsonl_text.splitlines():
        d = json.loads(line)
        d.pop("timing")
        d.pop("cached")
        out.append(json.dumps(d, sort_keys=True))
    return out


@pytest.fixture()
def server(tmp_path):
    with ServerThread(tmp_path / "serve-data", workers=2,
                      executor="thread", queue_limit=4) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient(server.url)


# --------------------------------------------------------------------- #
# the round trip
# --------------------------------------------------------------------- #


def test_sharded_job_matches_direct_run_byte_for_byte(client, tmp_path):
    job = client.submit("smoke", shards=2)
    view = job.wait(timeout=60)
    assert view["state"] == "done"
    assert view["jsonl"] and view["error"] is None
    served = _strip(open(view["jsonl"]).read())

    direct_dir = tmp_path / "direct"
    campaign = builtin_campaign("smoke", results_dir=direct_dir, use_cache=False)
    result = campaign.run(SerialExecutor(), progress=False)
    direct = _strip(open(result.jsonl_path).read())

    assert served == direct  # same records, same order, same digests
    assert view["records"] == len(direct)


def test_records_stream_and_follow(client):
    job = client.submit("smoke", shards=2)
    # follow=True holds the socket through the whole run: every record
    # arrives exactly once, and the stream terminates at the terminal state
    followed = list(job.records(follow=True))
    view = job.wait(timeout=60)
    assert len(followed) == view["records"] > 0
    # a post-completion read streams the canonical merged file: the same
    # records, reassembled into spec order (the live follow is shard-major)
    key = lambda d: json.dumps(d, sort_keys=True)
    replay = list(client.records(job.id))
    assert sorted(replay, key=key) == sorted(followed, key=key)
    with pytest.raises(JobNotFound):
        list(client.records("j999999"))


def test_inline_spec_submission_and_summary(client):
    spec = Campaign.from_dict({
        "name": "inline",
        "scenarios": [{"name": "s", "family": "random_forest", "sizes": [12, 16],
                       "protocol": "forest", "seeds": [0, 1]}],
    }, results_dir=None).to_dict()
    job = client.submit(spec=spec, shards=2)
    assert job.wait(timeout=60)["state"] == "done"
    summary = job.summary(by=("n",))
    assert summary["records"] == 4
    assert [g["group"]["n"] for g in summary["groups"]] == [12, 16]


def test_job_view_exposes_per_shard_progress(client):
    job = client.submit("smoke", shards=2)
    view = job.wait(timeout=60)
    view = client.job(job.id)
    progress = view["progress"]
    assert progress["records"] == progress["total"] == view["records"]
    assert [s["index"] for s in progress["shards"]] == [0, 1]
    assert all(s["done"] for s in progress["shards"])
    assert sum(s["total"] for s in progress["shards"]) == progress["total"]
    assert "_started_clock" not in view  # daemon-internal keys never leak


def test_health_and_listing(client):
    import repro

    job = client.submit("smoke")
    job.wait(timeout=60)
    health = client.health()
    assert health["status"] == "ok"
    assert health["version"] == repro.__version__
    assert health["jobs"]["done"] >= 1
    listed = client.jobs()
    assert [j["id"] for j in listed] == sorted(j["id"] for j in listed)


# --------------------------------------------------------------------- #
# error surface
# --------------------------------------------------------------------- #


def test_error_mapping_over_the_wire(client):
    with pytest.raises(JobNotFound, match="j424242"):
        client.job("j424242")
    with pytest.raises(ServeError, match="smoke"):  # did-you-mean as a 400
        client.submit("smokee")
    with pytest.raises(ServeError, match="exactly one"):
        client.submit()
    with pytest.raises(ServeError, match="cannot reach"):
        ServeClient("http://127.0.0.1:9", timeout=2).health()


def test_backpressure_and_cancel(tmp_path):
    # workers=0: nothing drains, so admission and cancel are deterministic
    with ServerThread(tmp_path / "bp", workers=0, executor="serial",
                      queue_limit=1) as srv:
        client = ServeClient(srv.url)
        job = client.submit("smoke")
        assert job.state == "queued"
        with pytest.raises(QueueFull) as exc_info:
            client.submit("smoke")
        assert exc_info.value.retry_after >= 1.0

        cancelled = job.cancel()
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServeError, match="already cancelled"):
            job.cancel()  # a second cancel is a 409 conflict
        # the cancelled job released its queue slot
        assert client.submit("smoke").state == "queued"


# --------------------------------------------------------------------- #
# /metrics conformance
# --------------------------------------------------------------------- #


def test_metrics_text_conformance(client):
    client.submit("smoke", shards=2).wait(timeout=60)
    text = client.metrics_text()
    # Prometheus text format: TYPE headers precede their (repro_-prefixed)
    # series; the wall-seconds histogram renders as _count/_sum/_min/_max
    for name, kind in (("serve_jobs", "gauge"),
                       ("serve_queue_depth", "gauge"),
                       ("serve_workers", "gauge"),
                       ("serve_jobs_submitted", "counter"),
                       ("serve_jobs_finished", "counter"),
                       ("serve_job_wall_seconds_count", "counter"),
                       ("serve_job_wall_seconds_sum", "counter"),
                       ("serve_job_wall_seconds_min", "gauge"),
                       ("serve_job_wall_seconds_max", "gauge")):
        assert f"# TYPE repro_{name} {kind}" in text, f"missing {name}"
    assert 'repro_serve_jobs{state="done"} 1' in text
    assert 'repro_serve_jobs{state="queued"} 0' in text  # zero series stay
    assert 'repro_serve_jobs_finished{state="done"} 1' in text
    assert "repro_serve_job_wall_seconds_count 1" in text
    assert "repro_serve_queue_depth 0" in text
    # every TYPE header names a kind Prometheus accepts
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            assert line.split()[-1] in ("counter", "gauge")


def test_metrics_fold_campaign_snapshots(client):
    client.submit("smoke").wait(timeout=60)
    client.submit("smoke").wait(timeout=60)
    text = client.metrics_text()
    assert "repro_serve_job_wall_seconds_count 2" in text
    # campaign-level counters folded into the fleet registry: two fresh
    # smoke campaigns double a single run's count
    runs = [line for line in text.splitlines()
            if line.startswith("repro_runs_started")]
    assert runs and float(runs[0].split()[-1]) == 16.0  # 2 x 8 smoke runs
