"""CLI exit-code contract for the serve verbs (and ``--version``).

Exit codes under test: 0 success, 1 domain refusal (full queue, a job
that landed failed/cancelled), 2 usage or connection trouble (no daemon
at ``--url``, unknown job ID).  The daemon is hosted in-process via
:class:`ServerThread`; the CLI reaches it through ``REPRO_SERVE_URL`` so
the commands run exactly as a user would type them.
"""

import json

import pytest

from repro import __version__
from repro.cli import main
from repro.serve import ServerThread


@pytest.fixture()
def server(tmp_path, monkeypatch):
    with ServerThread(tmp_path / "serve-data", workers=2,
                      executor="thread", queue_limit=2) as srv:
        monkeypatch.setenv("REPRO_SERVE_URL", srv.url)
        yield srv


def test_version_flag(capsys):
    assert main(["--version"]) == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_submit_jobs_job_happy_path(server, capsys):
    assert main(["submit", "smoke", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "submitted j000001" in out and "2 shard(s)" in out

    assert main(["job", "j000001", "--follow"]) == 0  # done -> 0
    out = capsys.readouterr().out
    assert "done" in out and "records ->" in out

    assert main(["jobs"]) == 0
    out = capsys.readouterr().out
    assert "j000001" in out and "done" in out

    assert main(["jobs", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert listed[0]["id"] == "j000001" and listed[0]["records"] == 8

    assert main(["job", "j000001", "--json"]) == 0
    view = json.loads(capsys.readouterr().out)
    assert view["state"] == "done" and view["progress"]["records"] == 8


def test_submit_json_emits_the_job_view(server, capsys):
    assert main(["submit", "smoke", "--json"]) == 0
    view = json.loads(capsys.readouterr().out)
    assert view["id"] == "j000001" and view["state"] == "queued"


def test_submit_spec_path(server, tmp_path, capsys):
    spec = {"name": "inline", "scenarios": [{
        "name": "s", "family": "random_forest", "sizes": [12],
        "protocol": "forest", "seeds": [0],
    }]}
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    assert main(["submit", str(path)]) == 0
    assert "inline" in capsys.readouterr().out
    # an unreadable spec path is usage, not a wire error
    bad = tmp_path / "bad.json"
    bad.write_text("{torn")
    assert main(["submit", str(bad)]) == 2


def test_cancelled_job_exits_one(tmp_path, monkeypatch, capsys):
    with ServerThread(tmp_path / "bp", workers=0, executor="serial",
                      queue_limit=1) as srv:
        monkeypatch.setenv("REPRO_SERVE_URL", srv.url)
        assert main(["submit", "smoke"]) == 0
        capsys.readouterr()
        # a full queue is a retryable domain refusal: exit 1, not 2
        assert main(["submit", "smoke"]) == 1
        assert "queue full" in capsys.readouterr().err
        assert main(["job", "j000001", "--cancel"]) == 1
        assert main(["job", "j000001"]) == 1  # terminal failure state


def test_connection_and_usage_errors(server, capsys):
    assert main(["job", "nope"]) == 2  # unknown ID, daemon said 404
    assert "error:" in capsys.readouterr().err
    assert main(["submit", "smokee"]) == 2  # unknown builtin, with hint
    assert "smoke" in capsys.readouterr().err


def test_no_daemon_listening_exits_two(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SERVE_URL", "http://127.0.0.1:9")
    for argv in (["submit", "smoke"], ["jobs"], ["job", "j000001"]):
        assert main(argv) == 2
        assert "cannot reach" in capsys.readouterr().err


def test_serve_usage_errors(capsys):
    assert main(["serve", "--executor", "gpu"]) == 2  # argparse choice
    capsys.readouterr()
    assert main(["submit"]) == 2  # missing campaign argument
