"""Scheduler-layer unit battery: validation, admission, retry policy.

End-to-end behavior (real sockets, real campaigns) lives in
``test_service.py``; these tests pin the pieces that do not need a
server: submission validation, constructor fail-fast, and the
crash-retry loop driven through a stubbed shard runner.
"""

import asyncio

import pytest

from repro.errors import QueueFull, ServeError, WorkerCrash
from repro.serve.queue import Scheduler, validate_submission
from repro.serve.store import JobStore


# --------------------------------------------------------------------- #
# validate_submission
# --------------------------------------------------------------------- #


def test_validate_requires_exactly_one_source():
    with pytest.raises(ServeError, match="exactly one"):
        validate_submission({})
    with pytest.raises(ServeError, match="exactly one"):
        validate_submission({"campaign": "smoke", "spec": {}})
    with pytest.raises(ServeError, match="JSON object"):
        validate_submission([1, 2])


def test_validate_unknown_builtin_keeps_did_you_mean():
    with pytest.raises(ServeError, match="smoke"):
        validate_submission({"campaign": "smokee"})


def test_validate_builtin_and_spec_shapes():
    payload, name = validate_submission({"campaign": "smoke"})
    assert payload == {"builtin": "smoke"} and name == "smoke"
    spec = {"name": "inline", "scenarios": [{
        "name": "s", "family": "random_forest", "sizes": [12],
        "protocol": "forest", "seeds": [0],
    }]}
    payload, name = validate_submission({"spec": spec})
    assert payload == {"spec": spec} and name == "inline"
    with pytest.raises(ServeError, match="invalid campaign spec"):
        validate_submission({"spec": {"name": "empty"}})
    with pytest.raises(ServeError, match="spec"):
        validate_submission({"spec": "not-an-object"})


# --------------------------------------------------------------------- #
# constructor + admission
# --------------------------------------------------------------------- #


def test_scheduler_constructor_fails_fast(tmp_path):
    store = JobStore(tmp_path)
    with pytest.raises(ServeError, match="workers"):
        Scheduler(store, workers=-1)
    with pytest.raises(ServeError, match="queue_limit"):
        Scheduler(store, queue_limit=0)
    with pytest.raises(Exception, match="executor"):
        Scheduler(store, executor="gpu")


def _scheduler(tmp_path, **kwargs):
    kwargs.setdefault("workers", 0)  # no loop needed: admission only
    kwargs.setdefault("executor", "serial")
    return Scheduler(JobStore(tmp_path), **kwargs)


def test_submit_validates_payload_fields(tmp_path):
    sched = _scheduler(tmp_path)
    with pytest.raises(ServeError, match="priority"):
        sched.submit({"campaign": "smoke", "priority": "urgent"})
    with pytest.raises(ServeError, match="shards"):
        sched.submit({"campaign": "smoke", "shards": 0})
    with pytest.raises(ServeError, match="shards"):
        sched.submit({"campaign": "smoke", "shards": "2"})
    with pytest.raises(ServeError, match="jobs"):
        sched.submit({"campaign": "smoke", "jobs": "four"})
    with pytest.raises(ServeError, match="executor|unknown"):
        sched.submit({"campaign": "smoke", "executor": "gpu"})


def test_admission_bounds_active_jobs_and_counts_rejects(tmp_path):
    sched = _scheduler(tmp_path, queue_limit=2)
    sched.submit({"campaign": "smoke"})
    sched.submit({"campaign": "smoke", "shards": 3})
    with pytest.raises(QueueFull) as exc_info:
        sched.submit({"campaign": "smoke"})
    assert exc_info.value.retry_after >= 1.0
    counters = sched.metrics.to_dict()["counters"]
    assert counters["serve_admission_rejects"] == 1
    assert counters["serve_jobs_submitted"] == 2
    # a terminal job frees its slot
    sched._finish(sched.store.get("j000001"), "cancelled")
    assert sched.submit({"campaign": "smoke"})["id"] == "j000003"


def test_queue_depth_counts_shard_assignments(tmp_path):
    sched = _scheduler(tmp_path)
    assert sched.queue_depth() == 0
    sched.submit({"campaign": "smoke", "shards": 3})
    sched.submit({"campaign": "smoke"})
    assert sched.queue_depth() == 4  # 3 + 1 assignments, jobs bound admission


def test_cancel_semantics_without_workers(tmp_path):
    sched = _scheduler(tmp_path)
    job = sched.submit({"campaign": "smoke"})
    cancelled = sched.cancel(job["id"])
    assert cancelled["state"] == "cancelled"
    with pytest.raises(ServeError, match="already cancelled"):
        sched.cancel(job["id"])
    running = sched.submit({"campaign": "smoke"})
    sched.store.update(running["id"], state="running")
    flagged = sched.cancel(running["id"])
    assert flagged["state"] == "running" and flagged["cancel_requested"]


# --------------------------------------------------------------------- #
# the retry loop, driven through a stubbed shard runner
# --------------------------------------------------------------------- #


class _FakeResult:
    records = ()
    resumed = 0
    cache_hits = 0
    metrics = None


def _run_assignment_with(sched, monkeypatch, outcomes):
    """Drive one assignment; ``outcomes`` yields per-attempt behaviors."""
    attempts = iter(outcomes)

    def fake_run_shard(job, index):
        outcome = next(attempts)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    monkeypatch.setattr(sched, "_run_shard", fake_run_shard)

    async def drive():
        job = sched.submit({"campaign": "smoke"})
        await sched._run_assignment(job["id"], 0)
        return sched.store.get(job["id"])

    return asyncio.run(drive())


def test_worker_crash_retries_then_succeeds(tmp_path, monkeypatch):
    sched = _scheduler(tmp_path, retries=2, backoff=0.001)
    monkeypatch.setattr(
        "repro.serve.queue.merge_shards",
        lambda results_dir, name, compact=False: (results_dir / "x.jsonl", 0),
    )
    job = _run_assignment_with(
        sched, monkeypatch, [WorkerCrash("pool died"), _FakeResult()]
    )
    assert job["state"] == "done"
    assert job["attempts"] == 1
    assert sched.metrics.to_dict()["counters"]["serve_shard_retries"] == 1


def test_trend_publish_failure_cannot_wedge_completion(tmp_path, monkeypatch):
    """Regression: a raising gauge update once left merged jobs 'running'
    forever — trend publishing is advisory and must never block _finish."""
    from repro.store import TREND_VERSION, append_point, trends_path

    sched = _scheduler(tmp_path, retries=0)

    def fake_merge(results_dir, name, compact=False):
        append_point(trends_path(results_dir), {
            "trend_version": TREND_VERSION, "kind": "campaign",
            "key": "k", "name": name, "metrics": {"records": 1},
        })
        return results_dir / "x.jsonl", 1

    monkeypatch.setattr("repro.serve.queue.merge_shards", fake_merge)

    def broken_gauge(*args, **kwargs):
        raise TypeError("gauge exploded")

    monkeypatch.setattr(sched.metrics, "set_gauge", broken_gauge)
    job = _run_assignment_with(sched, monkeypatch, [_FakeResult()])
    assert job["state"] == "done"


def test_completed_job_publishes_trend_gauges(tmp_path, monkeypatch):
    from repro.store import TREND_VERSION, append_point, trends_path

    sched = _scheduler(tmp_path, retries=0)

    def fake_merge(results_dir, name, compact=False):
        assert compact is True  # the scheduler always compacts on merge
        append_point(trends_path(results_dir), {
            "trend_version": TREND_VERSION, "kind": "campaign",
            "key": "k", "name": name,
            "metrics": {"records": 3, "max_message_bits_p95": 20},
        })
        return results_dir / "x.jsonl", 3

    monkeypatch.setattr("repro.serve.queue.merge_shards", fake_merge)
    job = _run_assignment_with(sched, monkeypatch, [_FakeResult()])
    assert job["state"] == "done"
    snap = sched.metrics.to_dict()
    gauges = snap["gauges"]
    assert any(k.startswith("trend_records") for k in gauges)
    assert snap["counters"].get("serve_trend_points") == 1


def test_worker_crash_exhausts_retries(tmp_path, monkeypatch):
    sched = _scheduler(tmp_path, retries=1, backoff=0.001)
    job = _run_assignment_with(
        sched, monkeypatch, [WorkerCrash("a"), WorkerCrash("b")]
    )
    assert job["state"] == "failed"
    assert "crashed 2 time(s)" in job["error"]


def test_plain_exception_fails_without_retry(tmp_path, monkeypatch):
    sched = _scheduler(tmp_path, retries=5)
    job = _run_assignment_with(sched, monkeypatch, [ValueError("boom")])
    assert job["state"] == "failed"
    assert "ValueError: boom" in job["error"]
    assert "serve_shard_retries" not in sched.metrics.to_dict()["counters"]


def test_timeout_is_a_hard_failure(tmp_path, monkeypatch):
    # A timed-out thread cannot be killed, so retrying would race two
    # writers on one shard stream — the policy is fail, never retry.
    sched = _scheduler(tmp_path, shard_timeout=0.05, retries=5)

    def hang(job, index):
        import time
        time.sleep(0.3)

    monkeypatch.setattr(sched, "_run_shard", hang)

    async def drive():
        job = sched.submit({"campaign": "smoke"})
        await sched._run_assignment(job["id"], 0)
        return sched.store.get(job["id"])

    job = asyncio.run(drive())
    assert job["state"] == "failed"
    assert "timeout" in job["error"]
    assert job["attempts"] == 0  # no retry happened


# --------------------------------------------------------------------- #
# wall-time accounting and the Retry-After hint
# --------------------------------------------------------------------- #


def test_cancel_queued_job_does_not_observe_wall_time(tmp_path):
    """Regression: a job cancelled while still queued never started, so it
    must not contribute a 0.0 sample to serve_job_wall_seconds — that
    dragged the histogram mean (and with it the Retry-After hint) toward
    zero on queues with many early cancellations."""
    sched = _scheduler(tmp_path)
    for _ in range(5):
        job = sched.submit({"campaign": "smoke"})
        done = sched.cancel(job["id"])
        assert done["state"] == "cancelled" and done["wall_seconds"] == 0.0
    snap = sched.metrics.to_dict()
    assert "serve_job_wall_seconds" not in snap["histograms"]
    assert snap["counters"]['serve_jobs_finished{state="cancelled"}'] == 5


def test_started_jobs_still_observe_wall_time(tmp_path):
    import time

    sched = _scheduler(tmp_path)
    job = sched.submit({"campaign": "smoke"})
    sched.store.update(job["id"], state="running",
                       _started_clock=time.monotonic() - 4.0)
    sched._finish(sched.store.get(job["id"]), "done")
    h = sched.metrics.to_dict()["histograms"]["serve_job_wall_seconds"]
    assert h["count"] == 1 and h["total"] >= 4.0


def test_retry_after_clamps_to_one_second_and_tracks_the_mean(tmp_path):
    sched = _scheduler(tmp_path)
    assert sched._retry_after() == 1.0  # no history yet: never 0
    sched.metrics.observe("serve_job_wall_seconds", 0.05)
    assert sched._retry_after() == 1.0  # fast jobs clamp up, never down
    sched.metrics.observe("serve_job_wall_seconds", 19.95)
    assert sched._retry_after() == 10.0  # (0.05 + 19.95) / 2


def test_retry_after_ignores_cancelled_while_queued(tmp_path):
    """The hint reflects only jobs that actually ran: queued-cancellations
    in between must not dilute it."""
    import time

    sched = _scheduler(tmp_path)
    job = sched.submit({"campaign": "smoke"})
    sched.store.update(job["id"], state="running",
                       _started_clock=time.monotonic() - 8.0)
    sched._finish(sched.store.get(job["id"]), "done")
    for _ in range(3):  # would have averaged in 0.0s walls before the fix
        sched.cancel(sched.submit({"campaign": "smoke"})["id"])
    assert sched._retry_after() >= 8.0
