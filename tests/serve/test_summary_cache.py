"""Regression battery for the incremental ``/summary`` cache.

The bug this pins: the old handler re-read every durable record line on
every poll.  The cache must answer repeated polls of unchanged streams
with ZERO file opens — counted by patching the module's single read
choke point — while staying byte-equivalent to batch aggregation.
"""

import json

import pytest

import repro.serve.summary as summary_mod
from repro.engine.shard import shard_stream_path
from repro.results.aggregate import aggregate
from repro.results.records import canonical_line, validate_record
from repro.serve.summary import SummaryCache

BY = ("protocol", "family", "n")


def _rec(n=16, seed=0, bits=20):
    return validate_record({
        "spec_version": 2,
        "spec": {
            "scenario": "s", "family": "random_forest", "n": n, "seed": seed,
            "protocol": "forest", "family_params": {}, "protocol_params": {},
            "budget_bits": None, "shuffle_delivery": False, "faults": None,
        },
        "result": {
            "status": "ok", "output_kind": "graph", "output_digest": "d",
            "exact": True, "graph_n": n, "graph_m": n - 1,
            "max_message_bits": bits, "total_message_bits": bits * n,
            "faults": {"dropped": 0, "duplicated": 0, "flipped": 0},
            "error": "",
        },
        "timing": {"wall_seconds": 0.01},
        "cached": False,
    })


@pytest.fixture()
def opens(monkeypatch):
    """Count every file open the cache performs."""
    counter = {"n": 0}
    real = summary_mod._read_from

    def counting(path, offset):
        counter["n"] += 1
        return real(path, offset)

    monkeypatch.setattr(summary_mod, "_read_from", counting)
    return counter


def _job(state="running", *, shards=2, jsonl=None):
    return {"id": "j1", "state": state, "name": "t", "shards": shards,
            "jsonl": jsonl}


def _write_stream(results_dir, index, shards, records):
    path = shard_stream_path(results_dir, "t", index, shards)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("".join(canonical_line(r) + "\n" for r in records))
    return path


class TestZeroOpensWhenIdle:
    def test_repeated_polls_open_nothing(self, tmp_path, opens):
        _write_stream(tmp_path, 0, 2, [_rec(seed=0), _rec(seed=1)])
        _write_stream(tmp_path, 1, 2, [_rec(seed=2)])
        cache = SummaryCache()
        count, groups = cache.summary(tmp_path, _job(), BY)
        assert count == 3
        assert opens["n"] == 2  # one open per stream to catch up

        for _ in range(10):  # the tight polling client
            again, same = cache.summary(tmp_path, _job(), BY)
            assert (again, same) == (count, groups)
        assert opens["n"] == 2  # ZERO additional opens — the regression

    def test_append_costs_one_open_for_that_stream(self, tmp_path, opens):
        s0 = _write_stream(tmp_path, 0, 2, [_rec(seed=0)])
        _write_stream(tmp_path, 1, 2, [_rec(seed=1)])
        cache = SummaryCache()
        cache.summary(tmp_path, _job(), BY)
        assert opens["n"] == 2

        with s0.open("a") as fh:
            fh.write(canonical_line(_rec(seed=7)) + "\n")
        count, _ = cache.summary(tmp_path, _job(), BY)
        assert count == 3
        assert opens["n"] == 3  # only the grown stream was reopened


class TestCorrectness:
    def test_matches_batch_aggregate(self, tmp_path):
        records = [_rec(n=16, seed=s, bits=10 + s) for s in range(4)]
        records += [_rec(n=64, seed=s, bits=100 + s) for s in range(3)]
        _write_stream(tmp_path, 0, 2, records[::2])
        _write_stream(tmp_path, 1, 2, records[1::2])
        cache = SummaryCache()
        count, groups = cache.summary(tmp_path, _job(), BY)
        assert count == len(records)
        assert json.dumps(groups, sort_keys=True) == \
            json.dumps(aggregate(records, by=BY), sort_keys=True)

    def test_torn_tail_stays_unconsumed_until_newline(self, tmp_path):
        stream = _write_stream(tmp_path, 0, 1, [_rec(seed=0)])
        torn = canonical_line(_rec(seed=9))
        with stream.open("a") as fh:
            fh.write(torn[:30])  # crash mid-write
        cache = SummaryCache()
        count, _ = cache.summary(tmp_path, _job(shards=1), BY)
        assert count == 1  # the torn record is not trusted

        with stream.open("a") as fh:
            fh.write(torn[30:] + "\n")  # the line completes
        count, _ = cache.summary(tmp_path, _job(shards=1), BY)
        assert count == 2

    def test_missing_streams_are_empty_not_errors(self, tmp_path):
        _write_stream(tmp_path, 0, 2, [_rec()])
        cache = SummaryCache()
        count, groups = cache.summary(tmp_path, _job(), BY)
        assert count == 1 and groups


class TestRebuildPaths:
    def test_shrunk_stream_forces_full_rebuild(self, tmp_path, opens):
        s0 = _write_stream(tmp_path, 0, 2, [_rec(seed=0), _rec(seed=1)])
        _write_stream(tmp_path, 1, 2, [_rec(seed=2)])
        cache = SummaryCache()
        cache.summary(tmp_path, _job(), BY)

        # A resume truncated the torn tail: the stream shrank in place.
        lines = s0.read_text().splitlines()
        s0.write_text(lines[0] + "\n")
        count, groups = cache.summary(tmp_path, _job(), BY)
        assert count == 2
        assert opens["n"] == 4  # 2 initial + full 2-stream rebuild

    def test_done_job_rebuilds_once_from_canonical(self, tmp_path, opens):
        records = [_rec(seed=s) for s in range(4)]
        _write_stream(tmp_path, 0, 2, records[::2])
        _write_stream(tmp_path, 1, 2, records[1::2])
        canonical = tmp_path / "t.jsonl"
        canonical.write_text(
            "".join(canonical_line(r) + "\n" for r in records)
        )
        cache = SummaryCache()
        cache.summary(tmp_path, _job(), BY)  # tailing: 2 opens
        job = _job("done", jsonl=str(canonical))
        count, groups = cache.summary(tmp_path, job, BY)
        assert count == 4
        assert opens["n"] == 3  # + one canonical rebuild
        for _ in range(5):
            cache.summary(tmp_path, job, BY)
        assert opens["n"] == 3  # then memory-served
        assert json.dumps(groups, sort_keys=True) == \
            json.dumps(aggregate(records, by=BY), sort_keys=True)

    def test_invalidate_drops_job_state(self, tmp_path, opens):
        _write_stream(tmp_path, 0, 1, [_rec()])
        cache = SummaryCache()
        cache.summary(tmp_path, _job(shards=1), BY)
        cache.invalidate("j1")
        cache.summary(tmp_path, _job(shards=1), BY)
        assert opens["n"] == 2  # re-read after invalidation
