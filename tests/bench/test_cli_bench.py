"""CLI ``bench``: exit codes (0/1/2), --json schema, output and gate flags.

Same contract as every other subcommand (PR 2's convention): 0 success,
1 gate failure, 2 usage error; ``main()`` never leaks ``SystemExit`` or a
traceback for user errors.
"""

import json

import pytest

from repro.bench import BENCH_VERSION
from repro.cli import main

ARGS = ["bench", "bits-pack", "bits-pack-naive", "--scale", "0.1",
        "--repeats", "1"]


def _run(capsys, *extra, expect=0):
    code = main(ARGS + list(extra))
    out = capsys.readouterr()
    assert code == expect, out.err or out.out
    return out


@pytest.fixture()
def out_json(tmp_path):
    return tmp_path / "BENCH_PR4.json"


class TestSuccessPaths:
    def test_human_output(self, capsys, out_json):
        out = _run(capsys, "--output", str(out_json))
        assert "bits-pack" in out.out and "speedup" in out.out
        assert f"report -> {out_json}" in out.out
        assert out_json.exists()

    def test_json_schema(self, capsys, out_json):
        out = _run(capsys, "--output", str(out_json), "--json")
        payload = json.loads(out.out)
        assert payload["bench_version"] == BENCH_VERSION
        assert payload["suite"] == ["bits-pack", "bits-pack-naive"]
        for entry in payload["results"].values():
            assert {"ops", "bits", "digest", "wall_seconds", "ops_per_second",
                    "peak_rss_kb", "meta"} == set(entry)
        assert "bits-pack" in payload["speedups"]
        # the emitted file carries the same deterministic fields
        on_disk = json.loads(out_json.read_text())
        assert on_disk["results"].keys() == payload["results"].keys()
        for name in on_disk["results"]:
            assert on_disk["results"][name]["digest"] == \
                payload["results"][name]["digest"]

    def test_output_dash_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _run(capsys, "--output", "-")
        assert not list(tmp_path.iterdir())

    def test_default_output_is_bench_pr4_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        _run(capsys)
        assert (tmp_path / "BENCH_PR4.json").exists()

    def test_freeze_writes_baseline(self, capsys, out_json, tmp_path):
        baseline = tmp_path / "baseline.json"
        _run(capsys, "--output", str(out_json), "--freeze", str(baseline))
        frozen = json.loads(baseline.read_text())
        assert set(frozen["pinned"]) == {"bits-pack", "bits-pack-naive"}


class TestGatePaths:
    def test_gate_passes_against_fresh_freeze(self, capsys, out_json, tmp_path):
        baseline = tmp_path / "baseline.json"
        _run(capsys, "--output", str(out_json), "--freeze", str(baseline))
        out = _run(capsys, "--output", str(out_json), "--gate", str(baseline))
        assert "passed" in out.out

    def test_gate_regression_exits_one(self, capsys, out_json, tmp_path):
        baseline = tmp_path / "baseline.json"
        _run(capsys, "--output", str(out_json), "--freeze", str(baseline))
        frozen = json.loads(baseline.read_text())
        frozen["pinned"]["bits-pack"]["ops"] += 1
        baseline.write_text(json.dumps(frozen))
        out = _run(capsys, "--output", str(out_json), "--gate", str(baseline),
                   expect=1)
        assert "FAIL [result]" in out.out and "FAILED" in out.out

    def test_gate_regression_json_exits_one(self, capsys, out_json, tmp_path):
        baseline = tmp_path / "baseline.json"
        _run(capsys, "--output", str(out_json), "--freeze", str(baseline))
        frozen = json.loads(baseline.read_text())
        frozen["min_speedup"] = {"bits-pack": 10_000.0}
        baseline.write_text(json.dumps(frozen))
        out = _run(capsys, "--output", str(out_json), "--gate", str(baseline),
                   "--json", expect=1)
        payload = json.loads(out.out)
        assert payload["gate"]["passed"] is False
        assert payload["gate"]["failures"][0]["kind"] == "speedup"

    def test_gate_missing_baseline_exits_two(self, capsys, out_json, tmp_path):
        out = _run(capsys, "--output", str(out_json), "--gate",
                   str(tmp_path / "absent.json"), expect=2)
        assert "does not exist" in out.err

    def test_time_tolerance_without_gate_notes(self, capsys, out_json):
        out = _run(capsys, "--output", str(out_json), "--time-tolerance", "2.0")
        assert "no effect without --gate" in out.err


class TestUsageErrors:
    def test_unknown_benchmark_exits_two(self, capsys):
        code = main(["bench", "l0-updaet", "--output", "-"])
        out = capsys.readouterr()
        assert code == 2
        assert "did you mean 'l0-update'" in out.err
        assert "Traceback" not in out.err

    def test_bad_scale_exits_two(self, capsys):
        assert main(["bench", "bits-pack", "--scale", "0", "--output", "-"]) == 2
        assert "scale" in capsys.readouterr().err

    def test_bad_repeats_exits_two(self, capsys):
        assert main(["bench", "bits-pack", "--repeats", "0", "--output", "-"]) == 2
        assert "repeats" in capsys.readouterr().err

    def test_unknown_flag_exits_two(self, capsys):
        assert main(["bench", "--frobnicate"]) == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_help_exits_zero(self, capsys):
        assert main(["bench", "--help"]) == 0
        assert "--gate" in capsys.readouterr().out
