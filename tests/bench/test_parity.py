"""Parity pins: the optimized sketching/bits hot paths change *nothing*.

Three layers of evidence, mirroring the Session-vs-Campaign identity
contract in ``tests/api/test_session.py``:

* micro — optimized update/packing loops produce values identical to the
  pre-optimization reference implementations on fuzzed inputs;
* benchmark pairs — every ``<name>``/``<name>-naive`` twin in the builtin
  suite reports the same deterministic digest;
* campaign — the ``smoke`` campaign (which exercises the AGM sketch path
  end to end) still matches the frozen pre-optimization baseline
  ``benchmarks/baselines/smoke.json``, digest for digest and bit for bit.
"""

import json
import pathlib
import random

import pytest

from repro.api import Session
from repro.bench import run_suite
from repro.bits.writer import BitWriter
from repro.results.baseline import check as baseline_check
from repro.sketching.field import MERSENNE61, fadd, fmul, fpow
from repro.sketching.l0sampler import L0Sampler, L0SamplerParams
from repro.sketching.onesparse import OneSparseSketch


class TestMicroParity:
    def test_onesparse_update_matches_composed_field_ops(self):
        rng = random.Random(11)
        m = 500
        fast = OneSparseSketch(m, z=1234567)
        slow = OneSparseSketch(m, z=1234567)
        for _ in range(300):
            index = rng.randrange(m)
            delta = rng.choice((-3, -1, 1, 2))
            fast.update(index, delta)
            # the pre-optimization composed form
            slow.c0 += delta
            slow.c1 += index * delta
            slow.c2 = fadd(slow.c2, fmul(delta % MERSENNE61, fpow(slow.z, index + 1)))
            assert fast.counters() == slow.counters()

    def test_l0_update_matches_per_level_sketch_updates(self):
        rng = random.Random(7)
        params = L0SamplerParams.derive(300, 42, 9)
        fast = L0Sampler(params)
        slow = L0Sampler(params)
        for _ in range(400):
            index = rng.randrange(params.m)
            delta = rng.choice((-1, 1))
            fast.update(index, delta)
            for lvl in range(slow._level_of(index) + 1):  # pre-optimization shape
                slow.sketches[lvl].update(index, delta)
        assert fast.counters() == slow.counters()

    def test_l0_update_still_validates_index(self):
        sampler = L0Sampler(L0SamplerParams.derive(16, 0))
        with pytest.raises(ValueError, match="outside"):
            sampler.update(16, 1)
        with pytest.raises(ValueError, match="outside"):
            sampler.update(-1, 1)

    def test_write_many_matches_write_bits(self):
        rng = random.Random(5)
        fields = []
        for _ in range(2500):  # > one 8192-bit chunk, so the splice path runs
            width = rng.randrange(0, 64)
            fields.append((rng.getrandbits(width) if width else 0, width))
        batched = BitWriter()
        batched.write_many(fields)
        sequential = BitWriter()
        for value, width in fields:
            sequential.write_bits(value, width)
        assert len(batched) == len(sequential)
        assert batched.to_int() == sequential.to_int()
        assert batched.to_bytes() == sequential.to_bytes()

    def test_write_many_rejects_bad_fields_atomically(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        with pytest.raises(Exception, match="does not fit"):
            writer.write_many([(1, 1), (9, 2)])
        assert writer.to_int() == (0b101, 3)  # rejected batch wrote nothing


class TestBenchmarkPairParity:
    def test_every_naive_twin_digests_identically(self):
        report = run_suite(
            ["l0-update", "l0-update-naive", "bits-pack", "bits-pack-naive",
             "derive-params", "derive-params-naive"],
            scale=0.1, repeats=1,
        )
        results = report["results"]
        for name in ("l0-update", "bits-pack", "derive-params"):
            assert results[name]["digest"] == results[f"{name}-naive"]["digest"], name
            assert results[name]["ops"] == results[f"{name}-naive"]["ops"]
            assert results[name]["bits"] == results[f"{name}-naive"]["bits"]

    def test_numpy_kernel_twins_digest_identically(self):
        """The kernel-backend pairs share inputs with the pure microbenches,
        so all four digests per family must agree — numpy vs pure twin AND
        vs the original pure pin."""
        from repro.sketching.kernels import numpy_available

        if not numpy_available():
            pytest.skip("numpy not installed; the pure-only bench leg covers this")
        names = ["l0-update", "bits-pack", "derive-params"]
        suite = [n for base in names
                 for n in (base, f"{base}-numpy", f"{base}-numpy-naive")]
        results = run_suite(suite, scale=0.1, repeats=1)["results"]
        for base in names:
            digests = {results[n]["digest"]
                       for n in (base, f"{base}-numpy", f"{base}-numpy-naive")}
            assert len(digests) == 1, (base, digests)

    def test_numpy_benches_raise_cleanly_without_numpy(self, monkeypatch):
        """Factory-time BenchError (not ImportError) when numpy is missing."""
        from repro.bench import builtin as bench_builtin
        from repro.errors import BenchError
        from repro.sketching import kernels

        monkeypatch.setattr(kernels, "_np", None)
        with pytest.raises(BenchError, match="requires numpy"):
            bench_builtin._bench_l0_update_numpy(0.1)
        with pytest.raises(BenchError, match="pure-only"):
            bench_builtin._bench_bits_pack_numpy(0.1)


SMOKE_BASELINE = pathlib.Path(__file__).parents[2] / "benchmarks" / "baselines" / "smoke.json"


class TestCampaignParity:
    """The acceptance pin: optimized paths, byte-identical records.

    ``benchmarks/baselines/smoke.json`` was frozen *before* the hot-path
    work and pins output digests and exact bit counts for runs exercising
    forest reconstruction, degeneracy, and the AGM sketch — rerunning the
    same grid on the optimized code must reproduce it exactly.
    """

    def test_smoke_campaign_matches_frozen_pre_optimization_baseline(self):
        from repro.engine import builtin_campaign

        result = builtin_campaign("smoke", results_dir=None, use_cache=False).run()
        verdict = baseline_check(
            [r.to_json_dict() for r in result.records], SMOKE_BASELINE,
        )
        assert verdict.passed, [f.detail for f in verdict.failures]

    def test_session_sketch_run_matches_baseline_entry(self):
        """A fluent Session re-run of the smoke sketch scenario lands on the
        same content hash, digest, and bit counts the baseline froze."""
        run = (Session("sketch-parity")
               .graphs("two_components", n=16, seeds=0)
               .protocol("agm_connectivity")
               .shuffle()
               .run())
        (record,) = run.records
        baseline = json.loads(SMOKE_BASELINE.read_text())
        entry = baseline["by_hash"][record.spec.content_hash()]
        assert entry["output_digest"] == record.output_digest
        assert entry["max_message_bits"] == record.max_message_bits
        assert entry["total_message_bits"] == record.total_message_bits
