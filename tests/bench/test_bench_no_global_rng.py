"""RNG hygiene: the bench harness never touches the global ``random`` state.

Mirror of ``tests/engine/test_no_global_rng.py`` for the measurement layer:
benchmark inputs come from splitmix64 chains and campaign cases run the
(already-hygienic) engine, so a full suite run must leave the global
sequence exactly where it found it — timing a system must not perturb it.
"""

import random

from repro.bench import run_suite

SENTINEL_SEED = 999
DRAWS = 8


def _expected_sequence():
    random.seed(SENTINEL_SEED)
    expected = [random.random() for _ in range(DRAWS)]
    random.seed(SENTINEL_SEED)  # rewind so the bench work starts from here
    return expected


def _assert_untouched(expected):
    assert [random.random() for _ in range(DRAWS)] == expected, \
        "global random state was consumed or reseeded"


def test_micro_benchmarks_leave_global_rng_alone():
    expected = _expected_sequence()
    run_suite(["l0-update", "l0-update-naive", "bits-pack", "derive-params"],
              scale=0.1, repeats=1)
    _assert_untouched(expected)


def test_campaign_benchmarks_leave_global_rng_alone():
    expected = _expected_sequence()
    run_suite(["session-forest", "session-sketch", "sketch-connectivity"],
              scale=0.25, repeats=1)
    _assert_untouched(expected)


def test_suite_results_identical_despite_global_seed_noise():
    """Reseeding the global RNG must not change any deterministic field."""
    random.seed(1)
    a = run_suite(["l0-update", "session-sketch"], scale=0.2, repeats=1)
    random.seed(2)
    b = run_suite(["l0-update", "session-sketch"], scale=0.2, repeats=1)
    for name in a["results"]:
        for key in ("ops", "bits", "digest"):
            assert a["results"][name][key] == b["results"][name][key]
