"""repro.bench harness: schema, registry integration, baseline gating."""

import json

import pytest

from repro import registry
from repro.bench import (
    BENCH_BASELINE_VERSION,
    BENCH_VERSION,
    BenchCase,
    check_suite,
    freeze_suite,
    load_bench_baseline,
    peak_rss_kb,
    run_case,
    run_suite,
    write_suite,
)
from repro.errors import BenchError, UnknownRegistryEntry

#: A tiny deterministic subset used throughout (fast even at repeats > 1).
SUBSET = ("bits-pack", "bits-pack-naive")

RESULT_KEYS = {"ops", "bits", "digest", "wall_seconds", "ops_per_second",
               "peak_rss_kb", "meta"}
STAT_KEYS = {"count", "min", "mean", "max", "p95"}


@pytest.fixture(scope="module")
def report():
    return run_suite(SUBSET, scale=0.1, repeats=2)


class TestRegistryIntegration:
    def test_benchmark_kind_registered(self):
        assert "benchmark" in registry.kinds()
        assert registry.BENCHMARK is registry.registry_for("benchmark")

    def test_builtin_suite_enumerable_via_catalog(self):
        catalog = registry.catalog()["benchmark"]
        assert "l0-update" in catalog
        assert "session-forest" in catalog
        # every builtin takes the harness's one context knob
        for meta in catalog.values():
            assert list(meta["params"]) == ["scale"]

    def test_every_naive_twin_has_its_optimized_partner(self):
        names = set(registry.BENCHMARK.names())
        for name in names:
            if name.endswith("-naive"):
                assert name[: -len("-naive")] in names

    def test_factories_build_bench_cases(self):
        case = registry.BENCHMARK.build("bits-pack", scale=0.1)
        assert isinstance(case, BenchCase)
        payload = case.op()
        assert payload["ops"] > 0


class TestReportSchema:
    def test_top_level_shape(self, report):
        assert report["bench_version"] == BENCH_VERSION
        assert report["scale"] == 0.1 and report["repeats"] == 2
        assert report["suite"] == sorted(SUBSET)
        assert set(report["results"]) == set(SUBSET)

    def test_result_entries(self, report):
        for entry in report["results"].values():
            assert set(entry) == RESULT_KEYS
            assert set(entry["wall_seconds"]) == STAT_KEYS
            assert entry["wall_seconds"]["count"] == 2
            assert entry["ops"] > 0 and entry["bits"] >= 0
            assert entry["digest"]
            assert entry["peak_rss_kb"] >= 0

    def test_speedup_pairs_reported(self, report):
        assert set(report["speedups"]) == {"bits-pack"}
        assert report["speedups"]["bits-pack"] > 0

    def test_deterministic_fields_reproduce(self, report):
        again = run_suite(SUBSET, scale=0.1, repeats=1)
        for name in SUBSET:
            for key in ("ops", "bits", "digest"):
                assert again["results"][name][key] == report["results"][name][key]

    def test_write_suite_round_trips(self, report, tmp_path):
        path = write_suite(report, tmp_path / "bench.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report))  # JSON-clean: no exotic types

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_kb() > 0


class TestArgumentValidation:
    def test_unknown_benchmark_suggests(self):
        with pytest.raises(UnknownRegistryEntry, match="did you mean 'l0-update'"):
            run_suite(["l0-updaet"], repeats=1)

    def test_bad_scale_and_repeats(self):
        with pytest.raises(BenchError, match="scale"):
            run_suite(SUBSET, scale=0)
        with pytest.raises(BenchError, match="repeats"):
            run_suite(SUBSET, repeats=0)

    def test_op_must_return_ops(self):
        with pytest.raises(BenchError, match="'ops'"):
            run_case(BenchCase(op=lambda: {"bits": 3}), repeats=1)


class TestBaselineGate:
    def test_freeze_then_check_roundtrip(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = load_bench_baseline(path)
        assert baseline["bench_baseline_version"] == BENCH_BASELINE_VERSION
        assert set(baseline["pinned"]) == set(SUBSET)
        verdict = check_suite(report, path)
        assert verdict.passed and verdict.runs_checked == len(SUBSET)

    def test_refreeze_carries_min_speedup_floors_forward(self, report, tmp_path):
        """A re-freeze must never silently disarm the speedup gate."""
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = json.loads(path.read_text())
        assert baseline["min_speedup"] == {}  # fresh freeze: no floors yet
        baseline["min_speedup"] = {"bits-pack": 1.1}
        path.write_text(json.dumps(baseline))
        freeze_suite(report, path)  # refresh over the declared floors
        assert json.loads(path.read_text())["min_speedup"] == {"bits-pack": 1.1}

    def test_verdict_json_names_the_time_tolerance(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        verdict = check_suite(report, path, time_tolerance=2.5).to_dict()
        assert verdict["time_tolerance"] == 2.5
        assert "bits_tolerance" not in verdict
        assert check_suite(report, path).to_dict()["time_tolerance"] is None

    def test_digest_drift_fails(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = json.loads(path.read_text())
        baseline["pinned"]["bits-pack"]["digest"] = "drifted"
        verdict = check_suite(report, baseline)
        assert not verdict.passed
        assert verdict.failures[0].kind == "result"

    def test_missing_and_extra_benchmarks_flagged(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = json.loads(path.read_text())
        baseline["pinned"]["phantom"] = {"ops": 1, "bits": 0, "digest": "x"}
        del baseline["pinned"]["bits-pack-naive"]
        kinds = sorted(f.kind for f in check_suite(report, baseline).failures)
        assert kinds == ["extra-bench", "missing-bench"]

    def test_time_tolerance_gate(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = json.loads(path.read_text())
        # a baseline 1000x faster than reality must fail any sane tolerance
        baseline["wall_seconds_mean"] = {
            name: mean / 1000 for name, mean in baseline["wall_seconds_mean"].items()
            if mean > 0
        }
        if baseline["wall_seconds_mean"]:
            verdict = check_suite(report, baseline, time_tolerance=2.0)
            assert any(f.kind == "time" for f in verdict.failures)
        assert check_suite(report, path).passed  # no tolerance: timing never gates

    def test_min_speedup_floor(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        baseline = json.loads(path.read_text())
        baseline["min_speedup"] = {"bits-pack": 10_000.0}
        verdict = check_suite(report, baseline)
        assert any(f.kind == "speedup" for f in verdict.failures)
        baseline["min_speedup"] = {"nonexistent": 1.0}
        verdict = check_suite(report, baseline)
        assert any("missing" in f.detail for f in verdict.failures)

    def test_scale_mismatch_refused(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        other = run_suite(["bits-pack"], scale=0.2, repeats=1)
        with pytest.raises(BenchError, match="scale"):
            check_suite(other, path)

    def test_malformed_baselines_refused(self, tmp_path):
        with pytest.raises(BenchError, match="does not exist"):
            load_bench_baseline(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_bench_baseline(bad)
        with pytest.raises(BenchError, match="bench_baseline_version"):
            load_bench_baseline({"pinned": {"x": {}}})
        with pytest.raises(BenchError, match="pinned"):
            load_bench_baseline({"bench_baseline_version": 1})
        with pytest.raises(BenchError, match="missing pinned field"):
            load_bench_baseline({"bench_baseline_version": 1,
                                 "pinned": {"x": {"ops": 1}}})

    def test_freeze_refuses_empty_report(self, tmp_path):
        with pytest.raises(BenchError, match="zero results"):
            freeze_suite({"results": {}}, tmp_path / "b.json")

    def test_bad_time_tolerance(self, report, tmp_path):
        path = freeze_suite(report, tmp_path / "bench.json")
        with pytest.raises(BenchError, match="time_tolerance"):
            check_suite(report, path, time_tolerance=0)
