"""Trace streams across kill/resume: durable events, zero duplication.

The event stream rides the same fsync-per-line writer as the records, so
a crash costs at most the final (torn) event; on ``--resume`` the torn
tail is truncated, completed-run events survive, replayed records emit
*nothing*, and only the genuinely re-executed specs append new spans.
The invariant checked throughout: exactly one ``run`` span per spec
hash, no matter how many times the campaign died on the way.
"""

import pytest

import repro.engine.campaign as campaign_module
from repro.engine import Campaign, Scenario
from repro.engine.scenario import execute_run
from repro.obs.events import load_events, load_partial_events


class SimulatedCrash(RuntimeError):
    """Stands in for kill -9: escapes the engine entirely."""


def _grid(n_seeds):
    return [
        Scenario(name="forest", family="random_forest", sizes=(12,),
                 protocol="forest", seeds=tuple(range(n_seeds))),
    ]


@pytest.fixture()
def crash_after(monkeypatch):
    def arm(k):
        state = {"left": k}

        def crashing(spec):
            if state["left"] <= 0:
                raise SimulatedCrash(f"killed after {k} run(s)")
            state["left"] -= 1
            return execute_run(spec)

        monkeypatch.setattr(campaign_module, "execute_run", crashing)
        return state

    yield arm
    monkeypatch.setattr(campaign_module, "execute_run", execute_run)


def _run_spans(events):
    return [e for e in events if e["kind"] == "span" and e["name"] == "run"]


class TestCrashDurability:
    def test_completed_run_events_survive_the_crash(self, tmp_path, crash_after):
        crash_after(3)
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        with pytest.raises(SimulatedCrash):
            campaign.run(trace=True)
        events, torn, _good = load_partial_events(tmp_path / "c.events.jsonl")
        assert torn in (0, 1)
        runs = _run_spans(events)
        assert len(runs) == 3  # the runs that landed before the kill
        # The crash itself is on the record too.
        crashes = [e for e in events
                   if e["kind"] == "mark" and e["name"] == "worker-crash"]
        assert len(crashes) == 1


class TestResumeNoDuplication:
    def test_resume_appends_only_the_missing_runs(self, tmp_path, crash_after):
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        crash_after(4)
        with pytest.raises(SimulatedCrash):
            campaign.run(trace=True)
        crash_after(10**9)  # disarm
        result = campaign.run(trace=True, resume=True)
        events = load_events(tmp_path / "c.events.jsonl")  # clean stream now

        runs = _run_spans(events)
        hashes = [s["attrs"]["spec"] for s in runs]
        assert len(hashes) == len(set(hashes)) == 6  # one span per spec, ever
        assert result.resumed == 4

        replays = [e for e in events
                   if e["kind"] == "mark" and e["name"] == "resume-replay"]
        assert [r["attrs"]["replayed"] for r in replays] == [4]

    def test_double_crash_resume_still_never_duplicates(self, tmp_path,
                                                        crash_after):
        campaign = Campaign(_grid(8), name="c", results_dir=tmp_path,
                            use_cache=False)
        for k in (3, 2):
            crash_after(k)
            with pytest.raises(SimulatedCrash):
                campaign.run(trace=True, resume=(k != 3))
        crash_after(10**9)
        result = campaign.run(trace=True, resume=True)
        events = load_events(tmp_path / "c.events.jsonl")
        hashes = [s["attrs"]["spec"] for s in _run_spans(events)]
        assert len(hashes) == len(set(hashes)) == 8
        assert result.resumed == 5

    def test_resume_truncates_a_torn_event_tail(self, tmp_path, crash_after):
        campaign = Campaign(_grid(4), name="c", results_dir=tmp_path,
                            use_cache=False)
        crash_after(2)
        with pytest.raises(SimulatedCrash):
            campaign.run(trace=True)
        ev_path = tmp_path / "c.events.jsonl"
        with ev_path.open("ab") as fh:
            fh.write(b'{"v": 1, "kind": "sp')  # simulate a mid-line kill
        crash_after(10**9)
        campaign.run(trace=True, resume=True)
        events = load_events(ev_path)  # strict: a leftover tear would raise
        assert len(_run_spans(events)) == 4

    def test_resumed_records_count_in_metrics_not_spans(self, tmp_path,
                                                        crash_after):
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        crash_after(4)
        with pytest.raises(SimulatedCrash):
            campaign.run(trace=True)
        crash_after(10**9)
        result = campaign.run(trace=True, resume=True)
        counters = result.metrics["counters"]
        assert counters["runs_resumed"] == 4
        assert counters["runs_started"] == 2  # only the re-executed tail
