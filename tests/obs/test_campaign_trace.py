"""Campaign tracing: exact reconciliation, metrics, layout, crash context.

The acceptance property of the whole layer: a traced campaign's per-phase
span totals equal the record ``*_seconds`` sums *exactly* (same clock,
same floats, copied bit-for-bit through retro spans), run spans carry the
records' ``wall_seconds``, cache hits get no phase children, and metrics
are collected whether or not event streaming is on.
"""

import concurrent.futures
import json

import pytest

import repro.engine.campaign as campaign_module
from repro.engine import Campaign, Scenario
from repro.engine.scenario import execute_run
from repro.errors import ObsError, WorkerCrash
from repro.obs.events import load_events, metrics_path
from repro.obs.metrics import load_metrics_file


def _grid(n_seeds=4, sizes=(12,)):
    return [
        Scenario(name="forest", family="random_forest", sizes=tuple(sizes),
                 protocol="forest", seeds=tuple(range(n_seeds))),
    ]


def _spans(events, name):
    return [e for e in events if e["kind"] == "span" and e["name"] == name]


@pytest.fixture()
def traced_run(tmp_path):
    campaign = Campaign(_grid(), name="c", results_dir=tmp_path)
    result = campaign.run(trace=True)
    return result, load_events(result.events_path)


class TestReconciliation:
    def test_phase_span_totals_equal_record_timing_sums_exactly(self, traced_run):
        result, events = traced_run
        for key, name in (("setup_seconds", "setup"), ("local_seconds", "local"),
                          ("referee_seconds", "referee"),
                          ("global_seconds", "global")):
            span_total = sum(s["dur"] for s in _spans(events, name))
            record_total = sum(r.timing[key] for r in result.records)
            assert span_total == record_total  # exact, not approx

    def test_run_span_durations_are_the_records_wall_seconds(self, traced_run):
        result, events = traced_run
        durs = sorted(s["dur"] for s in _spans(events, "run"))
        walls = sorted(r.timing["wall_seconds"] for r in result.records)
        assert durs == walls

    def test_one_run_span_per_record_keyed_by_spec_hash(self, traced_run):
        result, events = traced_run
        span_hashes = {s["attrs"]["spec"] for s in _spans(events, "run")}
        record_hashes = {r.spec.content_hash() for r in result.records}
        assert span_hashes == record_hashes

    def test_phase_children_parent_onto_their_run_span(self, traced_run):
        _result, events = traced_run
        run_ids = {s["span"] for s in _spans(events, "run")}
        for name in ("setup", "local", "referee", "global"):
            for child in _spans(events, name):
                assert child["parent"] in run_ids

    def test_campaign_span_is_the_root(self, traced_run):
        _result, events = traced_run
        roots = [e for e in events
                 if e["kind"] == "span" and e["parent"] is None]
        assert [r["name"] for r in roots] == ["campaign"]

    def test_marks_bracket_the_run(self, traced_run):
        _result, events = traced_run
        names = [e["name"] for e in events if e["kind"] == "mark"]
        assert names[0] == "campaign-start"
        assert names[-1] == "campaign-end"

    def test_metrics_snapshot_is_the_final_event(self, traced_run):
        _result, events = traced_run
        assert events[-1]["kind"] == "metrics"
        assert "counters" in events[-1]["metrics"]


class TestCachedRuns:
    def test_cache_hits_get_a_run_span_but_no_phase_children(self, tmp_path):
        campaign = Campaign(_grid(), name="c", results_dir=tmp_path)
        campaign.run(trace=True)
        result = campaign.run(trace=True)  # warm: every run a cache hit
        events = load_events(result.events_path)
        runs = _spans(events, "run")
        assert len(runs) == len(result.records)
        assert all(s["attrs"]["cached"] for s in runs)
        for name in ("setup", "local", "referee", "global"):
            assert _spans(events, name) == []

    def test_cache_metrics_split_hits_from_executions(self, tmp_path):
        campaign = Campaign(_grid(), name="c", results_dir=tmp_path)
        campaign.run()
        result = campaign.run()
        counters = result.metrics["counters"]
        assert counters["runs_cached"] == len(result.records)
        assert "runs_started" not in counters
        assert result.metrics["gauges"]["cache_hit_ratio"] == 1.0


class TestMetricsAlwaysOn:
    def test_untraced_run_still_collects_and_persists_metrics(self, tmp_path):
        result = Campaign(_grid(), name="c", results_dir=tmp_path).run()
        assert result.events_path is None
        assert not (tmp_path / "c.events.jsonl").exists()
        counters = result.metrics["counters"]
        assert counters["runs_started"] == len(result.records)
        assert counters["runs_completed{status=\"ok\"}"] == len(result.records)
        assert counters["bits_total"] == sum(
            r.total_message_bits for r in result.records
        )
        sidecar = load_metrics_file(result.metrics_path)
        assert sidecar["campaign"] == "c"
        assert sidecar["metrics"] == result.metrics

    def test_unpersisted_run_keeps_metrics_in_memory_only(self):
        result = Campaign(_grid(), name="c", results_dir=None).run()
        assert result.metrics["counters"]["runs_started"] == len(result.records)
        assert result.metrics_path is None

    def test_worker_series_track_the_executing_workers(self, tmp_path):
        result = Campaign(_grid(), name="c", results_dir=tmp_path).run()
        worker_tasks = {
            k: v for k, v in result.metrics["counters"].items()
            if k.startswith("worker_tasks{")
        }
        assert sum(worker_tasks.values()) == len(result.records)
        assert result.metrics["histograms"]["run_seconds"]["count"] == len(
            result.records
        )

    def test_manifest_embeds_the_final_snapshot(self, tmp_path):
        result = Campaign(_grid(), name="c", results_dir=tmp_path).run()
        manifest = json.loads((tmp_path / "c.manifest.json").read_text())
        assert manifest["metrics"] == result.metrics

    def test_summary_names_the_sidecar_files(self, tmp_path):
        result = Campaign(_grid(), name="c", results_dir=tmp_path).run(trace=True)
        summary = result.summary()
        assert summary["events"] == str(result.events_path)
        assert summary["metrics"] == str(result.metrics_path)


class TestShardedTrace:
    def test_single_shard_invocation_writes_per_shard_sidecars(self, tmp_path):
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        result = campaign.run(shards=3, shard_index=1, trace=True)
        assert result.events_path == tmp_path / "c.shard-1-of-3.events.jsonl"
        assert result.metrics_path == tmp_path / "c.shard-1-of-3.metrics.json"
        events = load_events(result.events_path)
        shard_spans = _spans(events, "shard")
        assert len(shard_spans) == 1
        assert shard_spans[0]["attrs"] == {"shard": 1, "shards": 3}
        assert len(_spans(events, "run")) == len(result.records)

    def test_all_shards_in_process_trace_to_one_stream(self, tmp_path):
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        result = campaign.run(shards=3, trace=True)
        events = load_events(tmp_path / "c.events.jsonl")
        assert len(_spans(events, "shard")) == 3
        assert len(_spans(events, "run")) == len(result.records)

    def test_done_markers_carry_metrics(self, tmp_path):
        campaign = Campaign(_grid(6), name="c", results_dir=tmp_path,
                            use_cache=False)
        campaign.run(shards=2, shard_index=0)
        done = json.loads((tmp_path / "c.shard-0-of-2.done").read_text())
        assert "metrics" in done
        assert done["metrics"]["counters"]["runs_started"] == done["records"]


class TestTraceErrors:
    def test_trace_without_results_dir_is_refused(self):
        campaign = Campaign(_grid(), name="c", results_dir=None)
        with pytest.raises(ObsError, match="results_dir"):
            campaign.run(trace=True)


class TestWorkerCrashContext:
    def test_broken_pool_wraps_in_worker_crash_with_context(
        self, tmp_path, monkeypatch
    ):
        def broken(spec):
            raise concurrent.futures.process.BrokenProcessPool("worker died")

        monkeypatch.setattr(campaign_module, "execute_run", broken)
        campaign = Campaign(_grid(1), name="c", results_dir=tmp_path,
                            use_cache=False)
        spec = campaign.specs()[0]
        with pytest.raises(WorkerCrash) as excinfo:
            campaign.run()
        err = excinfo.value
        assert err.spec_hash == spec.content_hash()
        assert err.shard_index is None
        assert spec.content_hash() in str(err)
        assert isinstance(
            err.__cause__, concurrent.futures.process.BrokenProcessPool
        )

    def test_task_exceptions_escape_unchanged_with_a_context_note(
        self, tmp_path, monkeypatch
    ):
        class TaskBug(ValueError):
            pass

        def buggy(spec):
            raise TaskBug("bad decode")

        monkeypatch.setattr(campaign_module, "execute_run", buggy)
        campaign = Campaign(_grid(1), name="c", results_dir=tmp_path,
                            use_cache=False)
        spec = campaign.specs()[0]
        with pytest.raises(TaskBug) as excinfo:  # type preserved, not wrapped
            campaign.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any(spec.content_hash() in note for note in notes)

    def test_crashes_count_and_mark_even_untraced(self, tmp_path, monkeypatch):
        state = {"left": 2}

        def crash_after_two(spec):
            if state["left"] <= 0:
                raise RuntimeError("boom")
            state["left"] -= 1
            return execute_run(spec)

        monkeypatch.setattr(campaign_module, "execute_run", crash_after_two)
        campaign = Campaign(_grid(4), name="c", results_dir=tmp_path,
                            use_cache=False)
        with pytest.raises(RuntimeError):
            campaign.run(trace=True)
        # The tracer closed on the way out: the crash mark is durable.
        from repro.obs.events import load_partial_events

        events, _torn, _good = load_partial_events(tmp_path / "c.events.jsonl")
        crashes = [e for e in events
                   if e["kind"] == "mark" and e["name"] == "worker-crash"]
        assert len(crashes) == 1
        assert "RuntimeError" in crashes[0]["attrs"]["error"]
