"""MetricsRegistry semantics, snapshot stability, Prometheus rendering.

The registry is the always-on half of the observability layer (event
streaming is opt-in, metrics are not), so its snapshot contract — sorted,
stable, JSON-ready — is what the manifest, the sidecar file, and
``repro stats`` all lean on.
"""

import json

import pytest

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry, load_metrics_file, render_prometheus


class TestCounters:
    def test_default_increment_is_one(self):
        m = MetricsRegistry()
        m.inc("runs_started")
        m.inc("runs_started")
        assert m.counter("runs_started") == 2

    def test_increment_by_value(self):
        m = MetricsRegistry()
        m.inc("bits_total", 96)
        m.inc("bits_total", 32)
        assert m.counter("bits_total") == 128

    def test_labels_split_series(self):
        m = MetricsRegistry()
        m.inc("runs_completed", status="ok")
        m.inc("runs_completed", status="ok")
        m.inc("runs_completed", status="error")
        assert m.counter("runs_completed", status="ok") == 2
        assert m.counter("runs_completed", status="error") == 1
        assert m.counter("runs_completed") == 0  # the bare series is its own

    def test_unfired_series_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_label_order_does_not_split_series(self):
        m = MetricsRegistry()
        m.inc("x", a="1", b="2")
        assert m.counter("x", b="2", a="1") == 1


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("cache_hit_ratio", 0.25)
        m.set_gauge("cache_hit_ratio", 0.75)
        assert m.to_dict()["gauges"]["cache_hit_ratio"] == 0.75

    def test_histogram_streams_in_constant_space(self):
        m = MetricsRegistry()
        for v in (0.5, 0.1, 0.4):
            m.observe("run_seconds", v)
        h = m.to_dict()["histograms"]["run_seconds"]
        assert h["count"] == 3
        assert h["total"] == pytest.approx(1.0)
        assert h["min"] == 0.1
        assert h["max"] == 0.5
        assert h["mean"] == pytest.approx(1.0 / 3)


class TestSnapshot:
    def test_snapshot_keys_are_sorted(self):
        m = MetricsRegistry()
        m.inc("zz")
        m.inc("aa")
        m.set_gauge("z_gauge", 1)
        m.set_gauge("a_gauge", 2)
        snap = m.to_dict()
        assert list(snap["counters"]) == ["aa", "zz"]
        assert list(snap["gauges"]) == ["a_gauge", "z_gauge"]

    def test_series_key_renders_prometheus_style(self):
        m = MetricsRegistry()
        m.inc("worker_tasks", worker="123:MainThread")
        assert 'worker_tasks{worker="123:MainThread"}' in m.to_dict()["counters"]

    def test_snapshot_is_json_ready(self):
        m = MetricsRegistry()
        m.inc("runs_started")
        m.observe("run_seconds", 0.5)
        json.dumps(m.to_dict())  # must not raise


class TestRenderPrometheus:
    def test_counters_gauges_and_histograms_render(self):
        m = MetricsRegistry()
        m.inc("runs_completed", 3, status="ok")
        m.set_gauge("cache_hit_ratio", 0.5)
        m.observe("run_seconds", 0.25)
        text = render_prometheus(m.to_dict())
        assert "# TYPE repro_runs_completed counter" in text
        assert 'repro_runs_completed{status="ok"} 3' in text
        assert "repro_cache_hit_ratio 0.5" in text
        assert "repro_run_seconds_count 1" in text
        assert "repro_run_seconds_sum 0.25" in text
        assert "repro_run_seconds_min 0.25" in text
        assert text.endswith("\n")

    def test_output_is_byte_stable(self):
        m = MetricsRegistry()
        m.inc("b")
        m.inc("a")
        assert render_prometheus(m.to_dict()) == render_prometheus(m.to_dict())

    def test_missing_section_is_refused(self):
        with pytest.raises(ObsError, match="histograms"):
            render_prometheus({"counters": {}, "gauges": {}})


class TestLoadMetricsFile:
    def test_round_trip(self, tmp_path):
        m = MetricsRegistry()
        m.inc("runs_started", 4)
        path = tmp_path / "c.metrics.json"
        path.write_text(json.dumps({"campaign": "c", "metrics": m.to_dict()}))
        loaded = load_metrics_file(path)
        assert loaded["campaign"] == "c"
        assert loaded["metrics"]["counters"]["runs_started"] == 4

    def test_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(ObsError, match="run the campaign first"):
            load_metrics_file(tmp_path / "nope.metrics.json")

    def test_invalid_json_is_an_error(self, tmp_path):
        path = tmp_path / "bad.metrics.json"
        path.write_text("{nope")
        with pytest.raises(ObsError, match="not valid JSON"):
            load_metrics_file(path)

    def test_wrong_shape_is_an_error(self, tmp_path):
        path = tmp_path / "odd.metrics.json"
        path.write_text(json.dumps({"campaign": "c"}))
        with pytest.raises(ObsError, match="missing the 'metrics' key"):
            load_metrics_file(path)


class TestMerge:
    """Snapshot folding — the serve daemon's fleet-level aggregation."""

    def test_counters_add_and_gauges_take_the_incoming_value(self):
        fleet, run = MetricsRegistry(), MetricsRegistry()
        fleet.inc("runs_started", 3)
        fleet.set_gauge("cache_hit_ratio", 0.25)
        run.inc("runs_started", 5)
        run.inc("runs_completed", 5, status="ok")
        run.set_gauge("cache_hit_ratio", 0.75)
        fleet.merge(run.to_dict())
        assert fleet.counter("runs_started") == 8
        assert fleet.counter("runs_completed", status="ok") == 5
        assert fleet.gauge("cache_hit_ratio") == 0.75  # last write wins

    def test_histograms_fold_and_mean_is_recomputed(self):
        fleet, run = MetricsRegistry(), MetricsRegistry()
        fleet.observe("run_seconds", 1.0)
        run.observe("run_seconds", 3.0)
        run.observe("run_seconds", 5.0)
        fleet.merge(run.to_dict())
        h = fleet.to_dict()["histograms"]["run_seconds"]
        assert h["count"] == 3
        assert (h["min"], h["max"], h["total"]) == (1.0, 5.0, 9.0)
        assert h["mean"] == pytest.approx(3.0)

    def test_merge_is_associative_with_fresh_series(self):
        fleet = MetricsRegistry()
        for value in (2.0, 4.0):
            run = MetricsRegistry()
            run.observe("wall", value)
            run.inc("jobs")
            fleet.merge(run.to_dict())
        snap = fleet.to_dict()
        assert snap["counters"]["jobs"] == 2
        assert snap["histograms"]["wall"]["count"] == 2

    def test_truncated_snapshot_is_refused(self):
        fleet = MetricsRegistry()
        with pytest.raises(ObsError, match="histograms"):
            fleet.merge({"counters": {}, "gauges": {}})

    def test_gauge_accessor_defaults_to_zero(self):
        m = MetricsRegistry()
        assert m.gauge("serve_queue_depth") == 0
        m.set_gauge("serve_queue_depth", 7)
        assert m.gauge("serve_queue_depth") == 7
