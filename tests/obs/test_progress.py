"""ProgressReporter: event folding, both output modes, honest ETA inputs.

The reporter is a plain tracer subscriber — these tests drive it with
synthetic events (the same dicts the engine emits) and with a real traced
campaign, checking the CI-safe line mode, the TTY redraw mode, and that
cached/resumed runs count toward completion without polluting the rate.
"""

import io

from repro.engine import Campaign, Scenario
from repro.obs.progress import ProgressReporter
from repro.obs.trace import EVENT_VERSION


def _mark(name, **attrs):
    return {"v": EVENT_VERSION, "kind": "mark", "name": name, "t": 0.0,
            "attrs": attrs}


def _run_span(**attrs):
    return {"v": EVENT_VERSION, "kind": "span", "name": "run", "span": 1,
            "parent": None, "t0": 0.0, "dur": 0.1, "attrs": attrs}


class TestEventFolding:
    def test_counts_runs_toward_completion(self):
        reporter = ProgressReporter(io.StringIO(), tty=False)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=3))
        reporter.on_event(_run_span(cached=False))
        reporter.on_event(_run_span(cached=True))
        assert (reporter.done, reporter.executed, reporter.cached) == (2, 1, 1)
        assert reporter.total == 3
        assert reporter.campaign == "c"

    def test_resume_replay_counts_without_touching_the_rate(self):
        reporter = ProgressReporter(io.StringIO(), tty=False)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=6))
        reporter.on_event(_mark("resume-replay", replayed=4))
        assert reporter.done == 4
        assert reporter.resumed == 4
        assert reporter.executed == 0  # replays never feed the runs/s rate

    def test_shard_position_is_tracked(self):
        reporter = ProgressReporter(io.StringIO(), tty=False)
        reporter.on_event(_mark("shard-start", shard=1, shards=3, runs=2))
        assert reporter.shard == (1, 3)

    def test_monolithic_shard_mark_is_ignored(self):
        reporter = ProgressReporter(io.StringIO(), tty=False)
        reporter.on_event(_mark("shard-start", shard=0, shards=1, runs=2))
        assert reporter.shard is None


class TestLineMode:
    def test_ci_logs_get_full_lines_and_a_final_summary(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, tty=False)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=2))
        reporter.on_event(_run_span(cached=False))
        reporter.on_event(_run_span(cached=False))
        reporter.on_event(_mark("campaign-end"))
        out = stream.getvalue()
        assert "\r" not in out  # line mode never redraws in place
        assert out.splitlines()[-1].startswith("c: 2/2 runs")
        assert out.splitlines()[-1].endswith("done")

    def test_lines_are_rate_limited(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, tty=False, line_interval=3600)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=50))
        for _ in range(50):
            reporter.on_event(_run_span(cached=False))
        reporter.on_event(_mark("campaign-end"))
        # One forced start line + one final summary; the 50 run events
        # collapsed into the interval.
        assert len(stream.getvalue().splitlines()) == 2

    def test_cached_and_resumed_show_in_the_status(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, tty=False)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=4))
        reporter.on_event(_mark("resume-replay", replayed=2))
        reporter.on_event(_run_span(cached=True))
        reporter.on_event(_mark("campaign-end"))
        final = stream.getvalue().splitlines()[-1]
        assert "1 cached" in final
        assert "2 resumed" in final


class TestTtyMode:
    def test_tty_redraws_in_place_and_clears_before_the_summary(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, tty=True, min_interval=0.0)
        reporter.on_event(_mark("campaign-start", campaign="c", runs=2))
        reporter.on_event(_run_span(cached=False))
        reporter.on_event(_mark("campaign-end"))
        out = stream.getvalue()
        assert "\r\x1b[K" in out
        assert out.endswith("done\n")


class TestOnTheRealEventBus:
    def test_campaign_run_drives_the_reporter(self, tmp_path):
        scenarios = [
            Scenario(name="forest", family="random_forest", sizes=(12,),
                     protocol="forest", seeds=(0, 1, 2)),
        ]
        stream = io.StringIO()
        reporter = ProgressReporter(stream, tty=False, line_interval=0.0)
        result = Campaign(scenarios, name="c", results_dir=tmp_path).run(
            progress=reporter
        )
        assert reporter.done == len(result.records) == 3
        final = stream.getvalue().splitlines()[-1]
        assert final.startswith("c: 3/3 runs")
        assert final.endswith("done")
        # progress alone persists no event stream
        assert result.events_path is None
