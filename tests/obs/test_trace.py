"""Tracer core: one clock, honest spans, ambient discipline, free when off.

Pins the three design rules of :mod:`repro.obs.trace`: durations are
authoritative (retro spans copy measured durations bit-for-bit), the
ambient tracer is context-local (pool workers never inherit it), and the
null tracer is a constant-time no-op — including the clock identity that
makes span durations and record ``*_seconds`` fields directly comparable.
"""

import contextvars

import pytest

from repro import obs
from repro.model.referee import monotonic_clock
from repro.obs.trace import (
    EVENT_VERSION,
    NULL_TRACER,
    NullTracer,
    Tracer,
    clock,
    current_tracer,
    use_tracer,
)


class _Sink:
    """A list-backed event sink (stands in for JsonlStreamWriter)."""

    def __init__(self):
        self.events = []
        self.closed = False

    def write(self, event):
        self.events.append(dict(event))

    def close(self):
        self.closed = True


class TestClockIdentity:
    def test_tracer_clock_is_the_engine_clock(self):
        # Not merely equal behaviour: the *same function object*, so span
        # durations and record *_seconds share one timebase by identity.
        assert clock is monotonic_clock


class TestSpans:
    def test_span_event_shape_and_nesting(self):
        sink = _Sink()
        tracer = Tracer(sink)
        with tracer.span("outer", campaign="c"):
            with tracer.span("inner", n=8):
                pass
        inner, outer = sink.events  # children close (emit) first
        assert inner["kind"] == outer["kind"] == "span"
        assert inner["v"] == outer["v"] == EVENT_VERSION
        assert outer["parent"] is None
        assert inner["parent"] == outer["span"]
        assert inner["span"] != outer["span"]
        assert inner["dur"] >= 0 and outer["dur"] >= inner["dur"]
        assert outer["attrs"] == {"campaign": "c"}
        assert inner["attrs"] == {"n": 8}

    def test_span_ids_are_unique_and_positive(self):
        tracer = Tracer(_Sink())
        ids = set()
        for _ in range(5):
            with tracer.span("s") as s:
                ids.add(s.span_id)
        assert len(ids) == 5
        assert all(i >= 1 for i in ids)

    def test_set_attaches_attrs_inside_the_block(self):
        sink = _Sink()
        tracer = Tracer(sink)
        with tracer.span("s", a=1) as s:
            s.set(b=2).set(a=3)
        assert sink.events[0]["attrs"] == {"a": 3, "b": 2}

    def test_retro_span_copies_duration_bit_for_bit(self):
        sink = _Sink()
        tracer = Tracer(sink)
        dur = 0.123456789012345  # no float that round-trips sloppily
        tracer.emit_span("local", 10.0, dur, protocol="forest", n=8)
        ev = sink.events[0]
        assert ev["dur"] == dur  # exact — the reconciliation mechanism
        assert ev["t0"] == 10.0
        assert ev["parent"] is None

    def test_retro_span_defaults_parent_to_innermost_open_span(self):
        sink = _Sink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            child = tracer.emit_span("setup", 0.0, 0.5)
        retro, _outer = sink.events
        assert retro["parent"] == outer.span_id
        assert child >= 1

    def test_retro_span_explicit_parent_wins(self):
        sink = _Sink()
        tracer = Tracer(sink)
        run_id = tracer.emit_span("run", 0.0, 1.0)
        tracer.emit_span("setup", 0.0, 0.5, parent=run_id)
        assert sink.events[1]["parent"] == run_id


class TestMarksAndMetrics:
    def test_mark_event_shape(self):
        sink = _Sink()
        Tracer(sink).mark("campaign-start", runs=4)
        ev = sink.events[0]
        assert ev["kind"] == "mark"
        assert ev["name"] == "campaign-start"
        assert ev["attrs"] == {"runs": 4}
        assert ev["t"] > 0

    def test_metrics_snapshot_event_shape(self):
        sink = _Sink()
        snap = {"counters": {"runs_started": 2}, "gauges": {}, "histograms": {}}
        Tracer(sink).metrics_snapshot(snap)
        ev = sink.events[0]
        assert ev["kind"] == "metrics"
        assert ev["metrics"] == snap


class TestSubscribers:
    def test_subscribers_see_every_event_after_the_sink(self):
        sink, seen = _Sink(), []
        tracer = Tracer(sink, subscribers=(seen.append,))
        with tracer.span("s"):
            pass
        tracer.mark("m")
        assert [e["kind"] for e in seen] == ["span", "mark"]
        assert len(sink.events) == 2

    def test_sinkless_tracer_feeds_subscribers_only(self):
        # How --progress runs without --trace: events stay in-process.
        seen = []
        tracer = Tracer(None, subscribers=(seen.append,))
        tracer.mark("m")
        assert len(seen) == 1
        tracer.close()  # no sink: close is a no-op

    def test_subscriber_exceptions_propagate(self):
        def broken(event):
            raise RuntimeError("consumer bug")

        tracer = Tracer(_Sink(), subscribers=(broken,))
        with pytest.raises(RuntimeError, match="consumer bug"):
            tracer.mark("m")

    def test_close_closes_the_sink(self):
        sink = _Sink()
        tracer = Tracer(sink)
        tracer.close()
        assert sink.closed


class TestNullTracer:
    def test_every_operation_is_a_no_op(self):
        t = NullTracer()
        assert t.enabled is False
        with t.span("s", a=1) as s:
            assert s.set(b=2) is s
        assert t.emit_span("s", 0.0, 1.0) == 0
        assert t.mark("m") is None
        assert t.metrics_snapshot({}) is None
        assert t.current_span_id() is None
        assert t.close() is None

    def test_null_span_is_one_shared_object(self):
        # The off-path allocates nothing per call — the overhead contract
        # the trace-overhead benchmark pins.
        t = NullTracer()
        assert t.span("a") is t.span("b")


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer(_Sink())
        with use_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_module_level_span_and_mark_use_the_ambient_tracer(self):
        sink = _Sink()
        with use_tracer(Tracer(sink)):
            with obs.span("phase", n=4):
                pass
            obs.mark("tick")
        assert [e["name"] for e in sink.events] == ["phase", "tick"]

    def test_fresh_contexts_do_not_inherit_the_ambient_tracer(self):
        # Pool workers run in fresh contexts: single-writer by construction.
        tracer = Tracer(_Sink())
        with use_tracer(tracer):
            ctx = contextvars.Context()  # what a new thread/process gets
            assert ctx.run(current_tracer) is NULL_TRACER


class TestSpanTaxonomyRegistry:
    def test_span_is_a_registry_kind(self):
        from repro import registry

        assert "span" in registry.kinds()

    def test_every_engine_span_name_is_registered(self):
        from repro import registry
        from repro.obs.taxonomy import SPAN_NAMES

        assert set(registry.SPAN.names()) == set(SPAN_NAMES)

    def test_span_entries_declare_their_attr_keys(self):
        from repro import registry

        keys = registry.get("span", "run")()
        assert "spec" in keys and "cached" in keys and "worker" in keys
        assert registry.get("span", "setup")() == ()
