"""Event schema conformance and torn-tail-tolerant stream loading.

The strict validator mirrors :mod:`repro.results.records`: unknown keys,
missing keys, wrong types, unknown kinds, negative durations, non-scalar
attributes, and future versions are all refused with an
:class:`~repro.errors.ObsError`.  The loaders share the shard layer's
torn-tail contract: a writer killed mid-line costs exactly the final
line, never the stream.
"""

import json

import pytest

from repro.errors import ObsError, ShardError
from repro.obs.events import (
    EVENT_VERSION,
    events_path,
    load_events,
    load_partial_events,
    metrics_path,
    validate_event,
)


def _span(**over):
    ev = {"v": EVENT_VERSION, "kind": "span", "name": "run", "span": 1,
          "parent": None, "t0": 0.5, "dur": 0.25, "attrs": {"n": 8}}
    ev.update(over)
    return ev


def _mark(**over):
    ev = {"v": EVENT_VERSION, "kind": "mark", "name": "campaign-start",
          "t": 1.5, "attrs": {"runs": 3}}
    ev.update(over)
    return ev


def _metrics(**over):
    ev = {"v": EVENT_VERSION, "kind": "metrics", "t": 2.0,
          "metrics": {"counters": {}, "gauges": {}, "histograms": {}}}
    ev.update(over)
    return ev


class TestValidateEvent:
    @pytest.mark.parametrize("event", [_span(), _mark(), _metrics()])
    def test_valid_events_round_trip(self, event):
        assert validate_event(event) == event

    def test_span_parent_may_be_an_id(self):
        validate_event(_span(span=2, parent=1))

    @pytest.mark.parametrize("attrs", [
        {"s": "x"}, {"i": 3}, {"f": 0.5}, {"b": True}, {"none": None},
    ])
    def test_attr_scalars_are_allowed(self, attrs):
        validate_event(_span(attrs=attrs))

    def test_non_mapping_is_refused(self):
        with pytest.raises(ObsError, match="must be an object"):
            validate_event([1, 2])

    def test_unknown_kind_is_refused(self):
        with pytest.raises(ObsError, match="kind must be one of"):
            validate_event(_span(kind="trace"))

    def test_unknown_key_is_refused(self):
        with pytest.raises(ObsError, match="t1"):
            validate_event(_span(t1=0.75))  # no redundant end timestamps

    def test_missing_key_is_refused(self):
        ev = _span()
        del ev["dur"]
        with pytest.raises(ObsError, match="dur"):
            validate_event(ev)

    def test_wrong_type_is_refused(self):
        with pytest.raises(ObsError):
            validate_event(_span(span="1"))

    def test_negative_duration_is_refused(self):
        with pytest.raises(ObsError, match="dur must be >= 0"):
            validate_event(_span(dur=-0.1))

    def test_span_id_zero_is_refused(self):
        with pytest.raises(ObsError, match="span must be >= 1"):
            validate_event(_span(span=0))

    def test_non_scalar_attr_value_is_refused(self):
        with pytest.raises(ObsError, match="JSON scalar"):
            validate_event(_span(attrs={"nested": {"a": 1}}))

    def test_non_string_attr_key_is_refused(self):
        with pytest.raises(ObsError, match="keys must be strings"):
            validate_event(_mark(attrs={3: "x"}))

    def test_newer_version_is_refused(self):
        with pytest.raises(ObsError, match="newer than this reader"):
            validate_event(_span(v=EVENT_VERSION + 1))

    def test_where_names_the_location(self):
        with pytest.raises(ObsError, match="events.jsonl:7"):
            validate_event(_span(dur=-1), where="events.jsonl:7")


class TestPaths:
    def test_monolithic_paths(self, tmp_path):
        assert events_path(tmp_path, "smoke") == tmp_path / "smoke.events.jsonl"
        assert metrics_path(tmp_path, "smoke") == tmp_path / "smoke.metrics.json"

    def test_shard_paths(self, tmp_path):
        assert events_path(tmp_path, "smoke", shard_index=1, shards=3) == (
            tmp_path / "smoke.shard-1-of-3.events.jsonl"
        )
        assert metrics_path(tmp_path, "smoke", shard_index=1, shards=3) == (
            tmp_path / "smoke.shard-1-of-3.metrics.json"
        )

    def test_shards_without_index_stays_monolithic(self, tmp_path):
        # An all-shards-in-process run merges into the canonical stem.
        assert events_path(tmp_path, "smoke", shard_index=None, shards=3) == (
            tmp_path / "smoke.events.jsonl"
        )


class TestLoading:
    def _write(self, path, events, tail=b""):
        data = b"".join(
            json.dumps(e, sort_keys=True).encode() + b"\n" for e in events
        )
        path.write_bytes(data + tail)
        return len(data)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        events = [_mark(), _span(), _metrics()]
        self._write(path, events)
        assert load_events(path) == events

    def test_partial_tolerates_a_torn_tail(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        good = self._write(path, [_mark(), _span()],
                           tail=b'{"v": 1, "kind": "sp')
        events, torn, good_bytes = load_partial_events(path)
        assert [e["kind"] for e in events] == ["mark", "span"]
        assert torn == 1
        assert good_bytes == good  # the resume truncation offset

    def test_strict_loader_refuses_a_torn_tail(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        self._write(path, [_mark()], tail=b'{"v": 1')
        with pytest.raises(ObsError, match="torn final event"):
            load_events(path)

    def test_missing_file_is_an_empty_partial_stream(self, tmp_path):
        events, torn, good = load_partial_events(tmp_path / "nope.jsonl")
        assert (events, torn, good) == ([], 0, 0)

    def test_missing_file_is_an_error_for_the_strict_loader(self, tmp_path):
        with pytest.raises(ObsError, match="does not exist"):
            load_events(tmp_path / "nope.jsonl")

    def test_mid_stream_corruption_is_never_tolerated(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        good_line = json.dumps(_mark(), sort_keys=True).encode() + b"\n"
        path.write_bytes(b"not json\n" + good_line)
        with pytest.raises(ShardError):
            load_partial_events(path)

    def test_invalid_event_in_stream_is_an_error(self, tmp_path):
        path = tmp_path / "c.events.jsonl"
        self._write(path, [_span(dur=-5.0), _mark()])
        with pytest.raises(ShardError):
            load_partial_events(path)
