"""CLI observability surface: --trace/--progress, `repro trace`, `repro stats`.

Same conventions as the rest of the CLI battery: exit 0 on success, 2 on
usage/input errors, messages not tracebacks, JSON output parseable and
stable.  The end-to-end case here is the PR's acceptance path — a traced
campaign whose events file feeds `repro trace` and whose metrics sidecar
feeds `repro stats`.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def traced_smoke(tmp_path):
    code = main(["campaign", "smoke", "--results-dir", str(tmp_path),
                 "--trace", "--no-progress"])
    assert code == 0
    return tmp_path


class TestCampaignFlags:
    def test_trace_writes_both_sidecars_and_names_them(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--trace", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert (tmp_path / "smoke.events.jsonl").exists()
        assert (tmp_path / "smoke.metrics.json").exists()
        assert "events  ->" in out
        assert "metrics ->" in out

    def test_untraced_run_writes_metrics_but_no_events(self, tmp_path):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--no-progress"]) == 0
        assert not (tmp_path / "smoke.events.jsonl").exists()
        assert (tmp_path / "smoke.metrics.json").exists()

    def test_json_summary_carries_the_sidecar_paths(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--trace", "--no-progress", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"].endswith("smoke.events.jsonl")
        assert summary["metrics"].endswith("smoke.metrics.json")

    def test_progress_writes_to_stderr_in_line_mode(self, tmp_path, capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "smoke:" in err
        assert err.rstrip().endswith("done")

    def test_progress_and_no_progress_are_mutually_exclusive(self, tmp_path,
                                                             capsys):
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--progress", "--no-progress"]) == 2
        assert "not allowed with" in capsys.readouterr().err

    def test_sharded_trace_smoke_end_to_end(self, tmp_path, capsys):
        # The acceptance scenario: a sharded multi-worker campaign with
        # tracing on, whose events file `repro trace` then renders.
        assert main(["campaign", "smoke", "--results-dir", str(tmp_path),
                     "--shards", "3", "--executor", "thread", "--jobs", "3",
                     "--trace", "--no-progress"]) == 0
        assert main(["trace", str(tmp_path / "smoke.events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out


class TestTraceCommand:
    def test_renders_the_three_report_blocks(self, traced_smoke, capsys):
        assert main(["trace", str(traced_smoke / "smoke.events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out
        assert "critical path" in out
        assert "slowest runs" in out
        assert "campaign" in out

    def test_json_report_reconciles_with_the_records(self, traced_smoke, capsys):
        assert main(["trace", str(traced_smoke / "smoke.events.jsonl"),
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        records = [
            json.loads(line) for line in
            (traced_smoke / "smoke.jsonl").read_text().splitlines()
        ]
        phases = {p["name"]: p for p in data["phases"]}
        for key, name in (("local_seconds", "local"),
                          ("referee_seconds", "referee"),
                          ("global_seconds", "global")):
            span_total = phases[name]["total_seconds"]
            # smoke includes violation-status runs that never reach the
            # phases: they appear in neither sum.
            record_total = sum(r["timing"].get(key, 0.0) for r in records)
            assert span_total == record_total
        assert phases["run"]["count"] == len(records)
        assert data["marks"]["campaign-start"] == 1

    def test_top_limits_the_slowest_runs_table(self, traced_smoke, capsys):
        assert main(["trace", str(traced_smoke / "smoke.events.jsonl"),
                     "--json", "--top", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["slowest_runs"]) == 2

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.events.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_torn_tail_is_tolerated(self, traced_smoke, capsys):
        ev = traced_smoke / "smoke.events.jsonl"
        with ev.open("ab") as fh:
            fh.write(b'{"v": 1, "kind": "sp')
        assert main(["trace", str(ev)]) == 0
        assert "phase-time breakdown" in capsys.readouterr().out


class TestStatsCommand:
    def test_bare_name_resolves_under_results_dir(self, traced_smoke, capsys):
        assert main(["stats", "smoke",
                     "--results-dir", str(traced_smoke)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runs_started counter" in out
        assert "repro_cache_hit_ratio" in out
        assert 'repro_runs_completed{status="ok"}' in out

    def test_explicit_path_works_too(self, traced_smoke, capsys):
        assert main(["stats", str(traced_smoke / "smoke.metrics.json")]) == 0
        assert "repro_bits_total" in capsys.readouterr().out

    def test_json_emits_the_raw_snapshot(self, traced_smoke, capsys):
        assert main(["stats", "smoke", "--results-dir", str(traced_smoke),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaign"] == "smoke"
        assert "counters" in payload["metrics"]

    def test_missing_snapshot_names_the_fix(self, tmp_path, capsys):
        assert main(["stats", "smoke", "--results-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "run the campaign first" in err
        assert "Traceback" not in err
