"""Model-layer instrumentation: phase spans, phase_seconds, digest safety.

The referee emits retro spans for its three phases only under an
explicitly installed ambient tracer — by default the instrumentation is
the null tracer's constant-time early return — and the span durations are
the *same floats* the :class:`~repro.model.referee.RunReport` carries, so
trace and report can never disagree.  Crucially, none of this may change
what a record *is*: the serialized record schema (and therefore every
frozen digest) stays byte-identical.
"""

import pytest

from repro.engine.scenario import RunSpec, execute_run
from repro.graphs.generators import random_forest
from repro.model import Referee, RunReport
from repro.obs.trace import Tracer, use_tracer
from repro.protocols.forest import ForestReconstructionProtocol


class _Sink:
    def __init__(self):
        self.events = []

    def write(self, event):
        self.events.append(dict(event))

    def close(self):
        pass


def _run_traced():
    g = random_forest(12, 3, seed=3)
    sink = _Sink()
    with use_tracer(Tracer(sink)):
        report = Referee().run(ForestReconstructionProtocol(), g)
    return report, sink.events


class TestPhaseSpans:
    def test_phases_emit_under_an_ambient_tracer(self):
        _report, events = _run_traced()
        assert [e["name"] for e in events] == ["local", "referee", "global"]
        assert all(e["kind"] == "span" for e in events)

    def test_span_durations_equal_report_fields_exactly(self):
        report, events = _run_traced()
        by_name = {e["name"]: e for e in events}
        assert by_name["local"]["dur"] == report.local_seconds
        assert by_name["referee"]["dur"] == report.referee_seconds
        assert by_name["global"]["dur"] == report.global_seconds

    def test_phase_spans_carry_protocol_and_size(self):
        _report, events = _run_traced()
        for ev in events:
            assert ev["attrs"]["protocol"] == "forest-reconstruction"
            assert ev["attrs"]["n"] == 12

    def test_no_tracer_means_no_events(self):
        g = random_forest(12, 3, seed=3)
        report = Referee().run(ForestReconstructionProtocol(), g)
        # The ambient default is NULL_TRACER: nothing to assert *on* —
        # the report itself is the complete output.
        assert report.output == g


class TestPhaseSeconds:
    def test_mapping_names_the_three_phases(self):
        report, _events = _run_traced()
        assert report.phase_seconds == {
            "local": report.local_seconds,
            "referee": report.referee_seconds,
            "global": report.global_seconds,
        }

    def test_referee_seconds_defaults_to_zero(self):
        # Hand-built reports (older call sites, tests) stay valid.
        fields = {f for f in RunReport.__dataclass_fields__}
        assert "referee_seconds" in fields


class TestRecordDigestsUnchanged:
    def test_record_schema_top_level_keys_are_frozen(self):
        spec = RunSpec(scenario="s", family="random_forest", n=12, seed=3,
                       protocol="forest")
        record = execute_run(spec)
        assert set(record.to_json_dict()) == {
            "spec_version", "spec", "result", "timing", "cached",
        }

    def test_timing_gains_setup_and_referee_seconds(self):
        spec = RunSpec(scenario="s", family="random_forest", n=12, seed=3,
                       protocol="forest")
        timing = execute_run(spec).to_json_dict()["timing"]
        assert set(timing) >= {
            "setup_seconds", "local_seconds", "referee_seconds",
            "global_seconds", "wall_seconds",
        }

    def test_tracing_does_not_change_the_output_digest(self):
        spec = RunSpec(scenario="s", family="random_forest", n=12, seed=3,
                       protocol="forest")
        plain = execute_run(spec)
        with use_tracer(Tracer(_Sink())):
            traced = execute_run(spec)
        assert traced.output_digest == plain.output_digest
        assert traced.total_message_bits == plain.total_message_bits
        assert traced.status == plain.status
