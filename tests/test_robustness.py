"""Robustness fuzzing: corrupted messages never crash the referee.

The global functions are *total* on their message domain: any single-bit
corruption either surfaces as a :class:`DecodeError` (or its recognition
subclass) or decodes to *some* labelled graph / boolean — never an
unhandled exception, never a hang.  This is the library-level contract that
lets the referee run on an untrusted network.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodeError, ReproError
from repro.graphs import LabeledGraph
from repro.graphs.generators import erdos_renyi, random_forest, random_k_degenerate
from repro.model import Message
from repro.protocols import (
    BoundedDegreeProtocol,
    DegeneracyReconstructionProtocol,
    ForestReconstructionProtocol,
    GeneralizedDegeneracyProtocol,
)
from repro.sketching import AGMConnectivityProtocol


def flip_bit(msg: Message, pos: int) -> Message:
    pos %= max(msg.bits, 1)
    return Message(msg.acc ^ (1 << pos), msg.bits) if msg.bits else msg


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 500), victim=st.integers(0, 100), pos=st.integers(0, 500))
def test_degeneracy_decoder_total_under_bitflips(seed, victim, pos):
    g = random_k_degenerate(12, 2, seed=seed)
    protocol = DegeneracyReconstructionProtocol(2)
    msgs = protocol.message_vector(g)
    msgs[victim % g.n] = flip_bit(msgs[victim % g.n], pos)
    try:
        out = protocol.global_(g.n, msgs)
    except ReproError:
        return  # detected corruption: acceptable
    assert isinstance(out, LabeledGraph)  # or a (possibly wrong) graph: total


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 300), victim=st.integers(0, 100), pos=st.integers(0, 200))
def test_forest_decoder_total_under_bitflips(seed, victim, pos):
    g = random_forest(12, 3, seed=seed)
    protocol = ForestReconstructionProtocol()
    msgs = protocol.message_vector(g)
    msgs[victim % g.n] = flip_bit(msgs[victim % g.n], pos)
    try:
        out = protocol.global_(g.n, msgs)
    except ReproError:
        return
    assert isinstance(out, LabeledGraph)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 200), victim=st.integers(0, 100), pos=st.integers(0, 400))
def test_generalized_decoder_total_under_bitflips(seed, victim, pos):
    g = erdos_renyi(8, 0.3, seed=seed)
    from repro.protocols.generalized_degeneracy import generalized_degeneracy

    k = max(1, generalized_degeneracy(g))
    protocol = GeneralizedDegeneracyProtocol(k)
    msgs = protocol.message_vector(g)
    msgs[victim % g.n] = flip_bit(msgs[victim % g.n], pos)
    try:
        out = protocol.global_(g.n, msgs)
    except ReproError:
        return
    assert isinstance(out, LabeledGraph)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), victim=st.integers(0, 100), pos=st.integers(0, 5000))
def test_sketch_decoder_total_under_bitflips(seed, victim, pos):
    g = erdos_renyi(10, 0.3, seed=seed)
    protocol = AGMConnectivityProtocol(seed=seed)
    msgs = protocol.message_vector(g)
    msgs[victim % g.n] = flip_bit(msgs[victim % g.n], pos)
    try:
        out = protocol.global_(g.n, msgs)
    except ReproError:
        return
    assert isinstance(out, bool)


class TestTruncationAndPadding:
    def test_truncated_message_rejected(self):
        g = random_k_degenerate(8, 2, seed=1)
        protocol = DegeneracyReconstructionProtocol(2)
        msgs = protocol.message_vector(g)
        short = Message(msgs[0].acc >> 3, msgs[0].bits - 3)
        with pytest.raises(DecodeError):
            protocol.global_(g.n, [short] + msgs[1:])

    def test_padded_message_rejected(self):
        g = random_k_degenerate(8, 2, seed=2)
        protocol = DegeneracyReconstructionProtocol(2)
        msgs = protocol.message_vector(g)
        long = Message(msgs[0].acc << 2, msgs[0].bits + 2)
        with pytest.raises(DecodeError):
            protocol.global_(g.n, [long] + msgs[1:])

    def test_empty_message_rejected(self):
        protocol = BoundedDegreeProtocol(2)
        with pytest.raises(DecodeError):
            protocol.global_(2, [Message.empty(), Message.empty()])
